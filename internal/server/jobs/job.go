package jobs

import (
	"context"
	"time"
)

// Job is one unit of mining work tracked by a Registry. Its mutable state
// is guarded by the registry lock; accessors take it, so they are safe
// from any goroutine.
type Job struct {
	id   string
	key  string
	kind string
	meta any

	r   *Registry
	run RunFunc

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed at finalize

	deadline time.Duration // watchdog bound on run time; 0 = unbounded

	// Guarded by r.mu.
	state    State
	retain   bool
	external bool
	wdKilled bool // watchdog failed this job and freed its worker slot
	refs     int
	parent   *Job // phase job pinned while this member is unfinished
	result   any
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	expires  time.Time

	events   []Event
	firstSeq int           // sequence number of events[0] (log may be trimmed)
	wake     chan struct{} // closed and replaced on every append/state change
}

// Event is one entry of a job's append-only event log: callers Emit
// progress or entry payloads, streaming subscribers replay and follow the
// log. Seq numbers are contiguous per job, starting at 0.
type Event struct {
	Seq  int
	Type string
	Data any
}

// EventTruncated is the type of the synthetic marker event EventsSince
// prepends when the requested cursor points below the trimmed log: its
// Data is the int count of events the reader can no longer see. It is
// never stored in the log and consumes no sequence number.
const EventTruncated = "truncated"

// ID is the job's registry-unique identifier.
func (j *Job) ID() string { return j.id }

// Key is the flight key the job was submitted under ("" when unkeyed).
func (j *Job) Key() string { return j.key }

// Kind is the caller-supplied job label.
func (j *Job) Kind() string { return j.kind }

// Meta is the caller-supplied opaque data (immutable by contract).
func (j *Job) Meta() any { return j.meta }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Context is the job's run context; it ends at abandonment, cancellation
// or finalization. External owners doing work outside the pool should
// watch it.
func (j *Job) Context() context.Context { return j.ctx }

// State returns the job's lifecycle position.
func (j *Job) State() State {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.state
}

// Result returns the job's outcome; ok is false while it is still queued
// or running. A cancelled job reports ErrCancelled.
func (j *Job) Result() (v any, err error, ok bool) {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	if !j.state.Finished() {
		return nil, nil, false
	}
	return j.result, j.err, true
}

// Times reports the lifecycle timestamps; zero values for phases not
// reached yet.
func (j *Job) Times() (created, started, finished time.Time) {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.created, j.started, j.finished
}

// Refs reports the current reference count (tests assert join/abandon
// accounting through it).
func (j *Job) Refs() int {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	return j.refs
}

// Complete finalizes an externally-executed job with its outcome (err nil
// → StateDone, else StateFailed). It is a no-op on an already-finished job
// — owners may complete members that were cancelled or abandoned in the
// meantime without checking first.
func (j *Job) Complete(v any, err error) {
	j.r.mu.Lock()
	j.completeLocked(v, err)
	j.r.mu.Unlock()
}

func (j *Job) completeLocked(v any, err error) {
	if err != nil {
		j.r.finalizeLocked(j, StateFailed, nil, err)
		return
	}
	j.r.finalizeLocked(j, StateDone, v, nil)
}

// Emit appends an event to the job's log and wakes subscribers. Events on
// a finished job are dropped (the log is complete once the job is). When
// the log exceeds the registry's EventBuffer, the oldest events are
// trimmed; sequence numbers keep counting, so followers detect the gap.
func (j *Job) Emit(eventType string, data any) {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	if j.state.Finished() {
		return
	}
	j.events = append(j.events, Event{Seq: j.firstSeq + len(j.events), Type: eventType, Data: data})
	if excess := len(j.events) - j.r.opts.EventBuffer; excess > 0 {
		j.events = j.events[excess:]
		j.firstSeq += excess
	}
	j.notifyLocked()
}

// EventsSince returns the buffered events with sequence >= seq, the cursor
// for the next call, whether the job is finished, and a channel closed on
// the next change (new event or state transition). The idiom for a
// follower is: drain, write, and if !finished block on wake (or the
// client's ctx), then call again.
//
// When seq points below the trimmed log — a slow or late reader that the
// EventBuffer cap has lapped — the gap is made explicit: the returned
// slice starts with a synthetic EventTruncated marker whose Data is the
// number of dropped events, then resumes at the oldest retained event.
func (j *Job) EventsSince(seq int) (evs []Event, next int, finished bool, wake <-chan struct{}) {
	j.r.mu.Lock()
	defer j.r.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < j.firstSeq {
		evs = append(evs, Event{Seq: seq, Type: EventTruncated, Data: j.firstSeq - seq})
		seq = j.firstSeq
	}
	if i := seq - j.firstSeq; i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.firstSeq + len(j.events), j.state.Finished(), j.wake
}

// notifyLocked wakes every subscriber blocked on the job's wake channel.
func (j *Job) notifyLocked() {
	close(j.wake)
	j.wake = make(chan struct{})
}
