package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, opts Options) *Registry {
	t.Helper()
	r := New(opts)
	t.Cleanup(r.Close)
	return r
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsAndCompletes(t *testing.T) {
	r := testRegistry(t, Options{Workers: 2})
	j, joined, err := r.Submit(SubmitOpts{
		Key:  "k1",
		Kind: "mine",
		Run:  func(ctx context.Context, j *Job) (any, error) { return 42, nil },
	})
	if err != nil || joined {
		t.Fatalf("Submit: joined=%v err=%v", joined, err)
	}
	v, err := r.Wait(context.Background(), j)
	if err != nil || v != 42 {
		t.Fatalf("Wait = (%v, %v), want (42, nil)", v, err)
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %v, want done", st)
	}
	if _, _, finished := j.Times(); finished.IsZero() {
		t.Fatal("finished timestamp not set")
	}
}

func TestSubmitFailure(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	boom := errors.New("boom")
	j, _, err := r.Submit(SubmitOpts{Run: func(ctx context.Context, j *Job) (any, error) { return nil, boom }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(context.Background(), j); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
}

func TestSubmitPanicBecomesFailure(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	j, _, err := r.Submit(SubmitOpts{Run: func(ctx context.Context, j *Job) (any, error) { panic("kaboom") }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(context.Background(), j); !errors.Is(err, ErrPanicked) {
		t.Fatalf("Wait err = %v, want ErrPanicked", err)
	}
}

// TestFlightKeyJoins: concurrent submissions under one key share a single
// execution — the unified dedup namespace contract.
func TestFlightKeyJoins(t *testing.T) {
	r := testRegistry(t, Options{Workers: 4})
	release := make(chan struct{})
	var runs int32
	var mu sync.Mutex
	run := func(ctx context.Context, j *Job) (any, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-release
		return "shared", nil
	}
	first, joined, err := r.Submit(SubmitOpts{Key: "q", Run: run})
	if err != nil || joined {
		t.Fatalf("first submit: joined=%v err=%v", joined, err)
	}
	waitFor(t, "first run to start", func() bool { return first.State() == StateRunning })

	const followers = 5
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		second, joined, err := r.Submit(SubmitOpts{Key: "q", Run: run})
		if err != nil || !joined || second != first {
			t.Fatalf("follower %d: joined=%v err=%v same=%v", i, joined, err, second == first)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := r.Wait(context.Background(), second); err != nil || v != "shared" {
				t.Errorf("follower Wait = (%v, %v)", v, err)
			}
		}()
	}
	close(release)
	if v, err := r.Wait(context.Background(), first); err != nil || v != "shared" {
		t.Fatalf("owner Wait = (%v, %v)", v, err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("%d executions for one key, want 1", runs)
	}
	if s := r.Snapshot(); s.Joined != followers {
		t.Fatalf("Joined = %d, want %d", s.Joined, followers)
	}
}

// TestSaturationRejects: once workers and queue are full, Submit sheds
// load with ErrSaturated and counts the rejection; RetryAfter gives a
// positive hint.
func TestSaturationRejects(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool { return running.State() == StateRunning })
	if _, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block}); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}
	if _, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	s := r.Snapshot()
	if s.Rejected != 1 || s.Queued != 1 || s.Running != 1 {
		t.Fatalf("snapshot = %+v, want 1 rejected / 1 queued / 1 running", s)
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("RetryAfter not positive")
	}
}

// TestLastWaiterAbandonsRun preserves the old flightGroup contract: the
// shared run is cancelled only when every attached caller has gone away,
// and its key is retired so new arrivals start fresh.
func TestLastWaiterAbandonsRun(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	started := make(chan struct{})
	stopped := make(chan struct{})
	j, _, err := r.Submit(SubmitOpts{Key: "q", Run: func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done()
		close(stopped)
		return "partial", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx2, cancel2 := context.WithCancel(context.Background())
	second, joined, err := r.Submit(SubmitOpts{Key: "q", Run: nil})
	if err != nil || !joined {
		t.Fatalf("join failed: joined=%v err=%v", joined, err)
	}

	// First waiter leaves: the run must keep going for the second.
	ctx1, cancel1 := context.WithCancel(context.Background())
	cancel1()
	if _, err := r.Wait(ctx1, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Wait err = %v", err)
	}
	select {
	case <-stopped:
		t.Fatal("run cancelled while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}

	// Last waiter leaves: the run is abandoned and the key retired.
	cancel2()
	if _, err := r.Wait(ctx2, second); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Wait err = %v", err)
	}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned run not cancelled")
	}
	if _, held := r.Lookup("q"); held {
		t.Fatal("key still held by the abandoned run")
	}
	// The worker records the partial outcome without crashing.
	waitFor(t, "worker to record the outcome", func() bool { return r.Snapshot().Running == 0 })
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer close(release)
	blocker, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true,
		Run: func(ctx context.Context, j *Job) (any, error) { <-release; return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool { return blocker.State() == StateRunning })

	ran := false
	queued, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true,
		Run: func(ctx context.Context, j *Job) (any, error) { ran = true; return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if prev, ok := r.Cancel(queued); !ok || prev != StateQueued {
		t.Fatalf("Cancel = (%v, %v), want (queued, true)", prev, ok)
	}
	if prev, ok := r.Cancel(queued); ok || prev != StateCancelled {
		t.Fatalf("double Cancel = (%v, %v), want (cancelled, false)", prev, ok)
	}
	if _, err, ok := queued.Result(); !ok || !errors.Is(err, ErrCancelled) {
		t.Fatalf("Result = (%v, %v), want ErrCancelled", err, ok)
	}
	if ran {
		t.Fatal("cancelled queued job ran")
	}
}

func TestCancelRunningJobStopsIt(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) { <-ctx.Done(); return "late", nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool { return j.State() == StateRunning })
	if prev, ok := r.Cancel(j); !ok || prev != StateRunning {
		t.Fatalf("Cancel = (%v, %v)", prev, ok)
	}
	// The late Complete from the worker must not resurrect the job.
	waitFor(t, "worker to drain", func() bool { return r.Snapshot().Running == 0 })
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state = %v after late completion, want cancelled", st)
	}
	if v, err, _ := j.Result(); v != nil || !errors.Is(err, ErrCancelled) {
		t.Fatalf("Result = (%v, %v), want (nil, ErrCancelled)", v, err)
	}
}

// TestExternalMemberAndBind models a batch: member entries are external
// jobs completed by a pool-executed phase; the phase is pinned by its
// members and abandoned when the last interested caller goes away.
func TestExternalMemberAndBind(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	m1, joined := r.External(SubmitOpts{Key: "set1", Kind: "mine"})
	if joined {
		t.Fatal("fresh member reported joined")
	}
	m2, _ := r.External(SubmitOpts{Key: "set2", Kind: "mine"})

	phaseGo := make(chan struct{})
	phase, _, err := r.Submit(SubmitOpts{Detached: true, Kind: "batch_phase",
		Run: func(ctx context.Context, j *Job) (any, error) {
			<-phaseGo
			m1.Complete("r1", nil)
			m2.Complete("r2", nil)
			return "phase", nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	r.Bind(m1, phase)
	r.Bind(m2, phase)

	// A single /v1/mine arriving now must join member m1 via the key.
	single, joined, err := r.Submit(SubmitOpts{Key: "set1", Run: nil})
	if err != nil || !joined || single != m1 {
		t.Fatalf("single did not join the batch member: joined=%v err=%v", joined, err)
	}

	close(phaseGo)
	if v, err := r.Wait(context.Background(), m1); err != nil || v != "r1" {
		t.Fatalf("member1 Wait = (%v, %v)", v, err)
	}
	if v, err := r.Wait(context.Background(), single); err != nil || v != "r1" {
		t.Fatalf("joined single Wait = (%v, %v)", v, err)
	}
	if v, err := r.Wait(context.Background(), m2); err != nil || v != "r2" {
		t.Fatalf("member2 Wait = (%v, %v)", v, err)
	}
	waitFor(t, "phase job to finish", func() bool { return phase.State() == StateDone })
}

// TestAbandonedMembersCancelPhase: when every member of a batch loses its
// last caller, the phase job's context is cancelled so the mining stops.
func TestAbandonedMembersCancelPhase(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	m1, _ := r.External(SubmitOpts{Key: "a"})
	m2, _ := r.External(SubmitOpts{Key: "b"})
	phaseStop := make(chan struct{})
	phase, _, err := r.Submit(SubmitOpts{Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) {
			<-ctx.Done()
			close(phaseStop)
			m1.Complete(nil, ctx.Err())
			m2.Complete(nil, ctx.Err())
			return nil, ctx.Err()
		}})
	if err != nil {
		t.Fatal(err)
	}
	r.Bind(m1, phase)
	r.Bind(m2, phase)
	waitFor(t, "phase running", func() bool { return phase.State() == StateRunning })

	r.Release(m1) // member abandoned: hard-cancelled, phase keeps going for m2
	if st := m1.State(); st != StateCancelled {
		t.Fatalf("abandoned member state = %v, want cancelled", st)
	}
	select {
	case <-phaseStop:
		t.Fatal("phase cancelled while a member had a caller")
	case <-time.After(20 * time.Millisecond):
	}

	r.Release(m2) // last interest gone: phase context must end
	select {
	case <-phaseStop:
	case <-time.After(5 * time.Second):
		t.Fatal("phase not cancelled after all members were abandoned")
	}
}

// TestRetainedJobSurvivesAndExpires: async jobs outlive their submitter,
// stay pollable after finishing, and are GC'd once the TTL passes.
func TestRetainedJobSurvivesAndExpires(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, TTL: 60 * time.Millisecond})
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) { return "kept", nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool { return j.State() == StateDone })
	got, ok := r.Get(j.ID())
	if !ok || got != j {
		t.Fatal("finished retained job not pollable")
	}
	if v, _, ok := j.Result(); !ok || v != "kept" {
		t.Fatalf("Result = (%v, %v)", v, ok)
	}
	waitFor(t, "TTL GC", func() bool { _, ok := r.Get(j.ID()); return !ok })
	if s := r.Snapshot(); s.Expired == 0 {
		t.Fatalf("Expired = %d, want > 0", s.Expired)
	}
}

// TestJoinUpgradesRetention: an async submission joining a plain in-flight
// run upgrades it to retained, so the job stays pollable after the
// original waiter finishes.
func TestJoinUpgradesRetention(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, TTL: time.Minute})
	release := make(chan struct{})
	j, _, err := r.Submit(SubmitOpts{Key: "q",
		Run: func(ctx context.Context, j *Job) (any, error) { <-release; return "v", nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "running", func() bool { return j.State() == StateRunning })
	async, joined, err := r.Submit(SubmitOpts{Key: "q", Retain: true, Detached: true, Run: nil})
	if err != nil || !joined || async != j {
		t.Fatalf("async join: joined=%v err=%v", joined, err)
	}
	close(release)
	if v, err := r.Wait(context.Background(), j); err != nil || v != "v" {
		t.Fatalf("Wait = (%v, %v)", v, err)
	}
	if _, ok := r.Get(j.ID()); !ok {
		t.Fatal("upgraded job dropped after its sync waiter left")
	}
}

// TestEventsReplayAndFollow: late subscribers replay the log from any
// cursor; followers wake on new events and on the terminal transition.
func TestEventsReplayAndFollow(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	emit := make(chan string)
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) {
			for {
				select {
				case s, ok := <-emit:
					if !ok {
						return "final", nil
					}
					j.Emit("progress", s)
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	emit <- "a"
	emit <- "b"
	// A channel handoff returns before the worker's Emit lands: wait for
	// the log, not the send.
	waitFor(t, "two events in the log", func() bool {
		evs, _, _, _ := j.EventsSince(0)
		return len(evs) == 2
	})

	evs, next, finished, wake := j.EventsSince(0)
	if len(evs) != 2 || evs[0].Data != "a" || evs[1].Data != "b" || finished {
		t.Fatalf("replay = %+v finished=%v", evs, finished)
	}
	go func() { emit <- "c"; close(emit) }()
	<-wake
	evs, _, _, _ = j.EventsSince(next)
	if len(evs) != 1 || evs[0].Data != "c" || evs[0].Seq != 2 {
		t.Fatalf("follow = %+v", evs)
	}
	waitFor(t, "job done", func() bool { return j.State() == StateDone })
	_, _, finished, _ = j.EventsSince(0)
	if !finished {
		t.Fatal("EventsSince does not report the terminal state")
	}
}

// TestEventBufferTrims: the log is bounded; a late subscriber reading from
// below the trim point gets an explicit truncation marker carrying the
// dropped count, then the surviving suffix.
func TestEventBufferTrims(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, EventBuffer: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) {
			for i := 0; i < 10; i++ {
				j.Emit("progress", i)
			}
			close(started)
			<-release
			return nil, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	evs, next, _, _ := j.EventsSince(0)
	if len(evs) != 5 || next != 10 {
		t.Fatalf("trimmed log = %+v next=%d, want marker + seqs 6..9", evs, next)
	}
	if evs[0].Type != EventTruncated || evs[0].Data != 6 {
		t.Fatalf("marker = %+v, want truncated with 6 dropped", evs[0])
	}
	if evs[1].Seq != 6 || evs[4].Seq != 9 {
		t.Fatalf("surviving suffix = %+v, want seqs 6..9", evs[1:])
	}
	// Reading from the trim point or above stays marker-free.
	if evs, _, _, _ := j.EventsSince(6); len(evs) != 4 || evs[0].Type != "progress" {
		t.Fatalf("aligned read = %+v, want plain seqs 6..9", evs)
	}
	close(release)
}

// TestFollowerReplayAcrossCap: a follower with a valid cursor that the cap
// laps mid-stream sees exactly one marker counting what it missed, then
// resumes contiguously — the replay path across the cap.
func TestFollowerReplayAcrossCap(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, EventBuffer: 4})
	step := make(chan int)
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) {
			for n := range step {
				for i := 0; i < n; i++ {
					j.Emit("progress", i)
				}
			}
			return nil, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	step <- 2
	waitFor(t, "first two events", func() bool {
		evs, _, _, _ := j.EventsSince(0)
		return len(evs) == 2
	})
	_, next, _, _ := j.EventsSince(0) // follower drained seqs 0..1, cursor 2

	step <- 8 // seqs 2..9; the 4-slot buffer keeps only 6..9
	close(step)
	waitFor(t, "log to trim past the cursor", func() bool {
		evs, _, _, _ := j.EventsSince(next)
		return len(evs) > 0 && evs[0].Type == EventTruncated
	})
	evs, next2, _, _ := j.EventsSince(next)
	if evs[0].Data != 4 { // seqs 2..5 dropped
		t.Fatalf("marker = %+v, want 4 dropped", evs[0])
	}
	if len(evs) != 5 || evs[1].Seq != 6 || evs[4].Seq != 9 || next2 != 10 {
		t.Fatalf("resume = %+v next=%d, want seqs 6..9", evs, next2)
	}
	// The follower keeps following from the new cursor without re-marking.
	if evs, _, _, _ := j.EventsSince(next2); len(evs) != 0 {
		t.Fatalf("post-resume read = %+v, want empty", evs)
	}
}

// TestWatchdogKillsStuckJob: a RunFunc that ignores its context past
// deadline+grace is failed with ErrWatchdogKilled and its worker slot is
// freed, so the pool keeps executing new jobs; the wedged goroutine's late
// return changes nothing.
func TestWatchdogKillsStuckJob(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, WatchdogGrace: 20 * time.Millisecond})
	wedge := make(chan struct{})
	defer close(wedge)
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true, Kind: "stuck",
		Deadline: 10 * time.Millisecond,
		Run: func(ctx context.Context, j *Job) (any, error) {
			<-wedge // ignores ctx: a stuck evaluator
			return "late", nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watchdog kill", func() bool { return j.State() == StateFailed })
	if _, err, _ := j.Result(); !errors.Is(err, ErrWatchdogKilled) {
		t.Fatalf("err = %v, want ErrWatchdogKilled", err)
	}
	select {
	case <-j.Context().Done():
	default:
		t.Fatal("killed job's context not cancelled")
	}

	// The single worker slot must be free again: a fresh job runs.
	after, _, err := r.Submit(SubmitOpts{Run: func(ctx context.Context, j *Job) (any, error) { return "ok", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Wait(context.Background(), after); err != nil || v != "ok" {
		t.Fatalf("post-kill job = (%v, %v), want ok — slot not freed", v, err)
	}
	s := r.Snapshot()
	if s.WatchdogKilled != 1 || s.Failed != 1 {
		t.Fatalf("snapshot = %+v, want 1 watchdog-killed", s)
	}
}

// TestWatchdogSparesCancellableRuns: a run that respects its context and a
// run that finishes inside deadline+grace are never watchdog-killed.
func TestWatchdogSparesCancellableRuns(t *testing.T) {
	r := testRegistry(t, Options{Workers: 2, WatchdogGrace: 30 * time.Millisecond})
	quick, _, err := r.Submit(SubmitOpts{Deadline: 5 * time.Second,
		Run: func(ctx context.Context, j *Job) (any, error) { return "fast", nil }})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Wait(context.Background(), quick); err != nil || v != "fast" {
		t.Fatalf("fast job = (%v, %v)", v, err)
	}
	// No deadline → never killed, however long it runs.
	release := make(chan struct{})
	slow, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) { <-release; return "slow", nil }})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // several watchdog ticks
	if st := slow.State(); st != StateRunning {
		t.Fatalf("deadline-free job state = %v, want running", st)
	}
	close(release)
	waitFor(t, "slow job done", func() bool { return slow.State() == StateDone })
	if s := r.Snapshot(); s.WatchdogKilled != 0 {
		t.Fatalf("WatchdogKilled = %d, want 0", s.WatchdogKilled)
	}
}

// TestWatchdogKillsExternalJob: an external member whose owner wedged is
// failed too, so batch collectors waiting on it unblock.
func TestWatchdogKillsExternalJob(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, WatchdogGrace: 20 * time.Millisecond})
	m, _ := r.External(SubmitOpts{Key: "member", Deadline: 10 * time.Millisecond})
	if _, err := r.Wait(context.Background(), m); !errors.Is(err, ErrWatchdogKilled) {
		t.Fatalf("member Wait err = %v, want ErrWatchdogKilled", err)
	}
	m.Complete("late", nil) // the wedged owner reporting late is a no-op
	if st := m.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
}

// TestDrain: draining rejects new submissions with ErrDraining, still lets
// callers join in-flight work, finishes what was admitted, and DrainWait
// returns once the registry is idle.
func TestDrain(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	release := make(chan struct{})
	j, _, err := r.Submit(SubmitOpts{Key: "inflight", Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) { <-release; return "done", nil }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool { return j.State() == StateRunning })

	r.Drain()
	if !r.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, _, err := r.Submit(SubmitOpts{Run: nil}); !errors.Is(err, ErrDraining) {
		t.Fatalf("drained Submit err = %v, want ErrDraining", err)
	}
	joinedJob, joined, err := r.Submit(SubmitOpts{Key: "inflight", Run: nil})
	if err != nil || !joined || joinedJob != j {
		t.Fatalf("drained join: joined=%v err=%v", joined, err)
	}
	r.Release(joinedJob)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := r.DrainWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DrainWait with work in flight = %v, want deadline exceeded", err)
	}
	cancel()

	close(release)
	if err := r.DrainWait(context.Background()); err != nil {
		t.Fatalf("DrainWait = %v", err)
	}
	if v, _, ok := j.Result(); !ok || v != "done" {
		t.Fatalf("in-flight job after drain = (%v, %v), want done", v, ok)
	}
	if s := r.Snapshot(); !s.Draining {
		t.Fatal("snapshot does not report draining")
	}
}

// TestBatchPriorityReserve: batch submissions are shed while only the
// interactive reserve remains; interactive ones may fill the whole queue.
func TestBatchPriorityReserve(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1, QueueDepth: 2, InteractiveReserve: 1})
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	running, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool { return running.State() == StateRunning })

	// Queue empty (0 of 2): batch may use the unreserved slot.
	if _, _, err := r.Submit(SubmitOpts{Priority: PriorityBatch, Detached: true, Retain: true, Run: block}); err != nil {
		t.Fatalf("batch into free queue rejected: %v", err)
	}
	// Queue at 1 of 2: only the reserved slot remains — batch is shed...
	if _, _, err := r.Submit(SubmitOpts{Priority: PriorityBatch, Detached: true, Retain: true, Run: block}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("batch into reserve err = %v, want ErrSaturated", err)
	}
	// ...while interactive still gets in.
	if _, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block}); err != nil {
		t.Fatalf("interactive into reserve rejected: %v", err)
	}
	// Now the queue is truly full: interactive is shed the ordinary way.
	if _, _, err := r.Submit(SubmitOpts{Detached: true, Retain: true, Run: block}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("interactive into full queue err = %v, want ErrSaturated", err)
	}
	s := r.Snapshot()
	if s.Rejected != 2 || s.RejectedBatch != 1 {
		t.Fatalf("snapshot = %+v, want 2 rejected of which 1 batch", s)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	r := New(Options{Workers: 1})
	j, _, err := r.Submit(SubmitOpts{Retain: true, Detached: true,
		Run: func(ctx context.Context, j *Job) (any, error) { <-ctx.Done(); return nil, ctx.Err() }})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "running", func() bool { return j.State() == StateRunning })
	r.Close()
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state after Close = %v", st)
	}
	if _, _, err := r.Submit(SubmitOpts{Run: nil}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Submit err = %v, want ErrClosed", err)
	}
}

// TestConcurrentChurn hammers the registry from many goroutines — joins,
// waits, cancels, abandons — to give the race detector surface.
func TestConcurrentChurn(t *testing.T) {
	r := testRegistry(t, Options{Workers: 4, QueueDepth: 64, TTL: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%7)
				j, _, err := r.Submit(SubmitOpts{Key: key, Retain: i%3 == 0, Kind: "churn",
					Run: func(ctx context.Context, j *Job) (any, error) {
						j.Emit("progress", i)
						return key, nil
					}})
				if errors.Is(err, ErrSaturated) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					r.Wait(ctx, j)
				case 1:
					r.Cancel(j)
					r.Release(j)
				default:
					if v, err := r.Wait(context.Background(), j); err == nil && v != key {
						t.Errorf("wrong result %v for %s", v, key)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Submitted == 0 || s.Completed == 0 {
		t.Fatalf("churn did nothing: %+v", s)
	}
}

// TestJobIntrospection covers the accessor surface the HTTP layer builds
// job documents from: identity, metadata, lifecycle channels and the wire
// names of every state.
func TestJobIntrospection(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	j, joined := r.External(SubmitOpts{Key: "intro", Kind: "mine", Meta: "m"})
	if joined {
		t.Fatal("first External joined")
	}
	if j.Key() != "intro" || j.Kind() != "mine" || j.Meta() != "m" {
		t.Fatalf("accessors = (%q, %q, %v)", j.Key(), j.Kind(), j.Meta())
	}
	if j.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", j.Refs())
	}
	r.Attach(j)
	if j.Refs() != 2 {
		t.Fatalf("refs after Attach = %d, want 2", j.Refs())
	}
	r.Release(j)
	select {
	case <-j.Done():
		t.Fatal("Done closed before completion")
	case <-j.Context().Done():
		t.Fatal("Context ended before completion")
	default:
	}
	j.Complete("v", nil)
	<-j.Done()
	<-j.Context().Done()
	if v, err, ok := j.Result(); !ok || err != nil || v != "v" {
		t.Fatalf("Result = (%v, %v, %v)", v, err, ok)
	}

	names := map[State]string{
		StateQueued: "queued", StateRunning: "running", StateDone: "done",
		StateFailed: "failed", StateCancelled: "cancelled", State(99): "unknown",
	}
	for st, want := range names {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

// TestExternalJoinAndClosedRegistry covers the External fast paths: a
// second registration under a live key joins the first job, and a closed
// registry hands out born-cancelled jobs instead of nil.
func TestExternalJoinAndClosedRegistry(t *testing.T) {
	r := testRegistry(t, Options{Workers: 1})
	a, _ := r.External(SubmitOpts{Key: "dup", Kind: "mine"})
	b, joined := r.External(SubmitOpts{Key: "dup", Kind: "mine"})
	if !joined || a != b {
		t.Fatalf("second External: joined=%v same=%v", joined, a == b)
	}
	r.Release(b)
	a.Complete(nil, nil)
	r.Wait(context.Background(), a)

	closed := New(Options{Workers: 1})
	closed.Close()
	j, joined := closed.External(SubmitOpts{Key: "k", Kind: "mine"})
	if joined || j == nil {
		t.Fatalf("closed External: j=%v joined=%v", j, joined)
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("closed External state = %v, want cancelled", st)
	}
	if _, err, ok := j.Result(); !ok || !errors.Is(err, ErrCancelled) {
		t.Fatalf("closed External result = (%v, %v)", err, ok)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("closed External job not Done")
	}
}
