package server

// Tests for the admin mutation plane: the facts/compile endpoints' HTTP
// semantics, their crash chaos (WAL sync failures, torn appends, compaction
// crashes must degrade exactly as documented — no acked loss, no
// quarantine, reads keep serving), and the generation machinery that makes
// a mutation invalidate stale cached answers.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/server/faults"
)

const tinyOnt = "http://tiny.demo/ontology/"

// liveServer is tinyServer plus a live KB named "geo" backed by a WAL in a
// test temp dir, and a faults.Reset cleanup. The default KB stays non-live
// so the 409 paths are exercisable on the same server.
func liveServer(t *testing.T, opts Options) (*Server, *remi.LiveKB) {
	t.Helper()
	s := tinyServer(t, opts)
	t.Cleanup(faults.Reset)
	dir := t.TempDir()
	src := filepath.Join(dir, "src.nt")
	var buf []byte
	for _, tr := range datagen.TinyGeo().Triples {
		buf = append(buf, fmt.Sprintf("%s %s %s .\n", tr.S, tr.P, tr.O)...)
	}
	if err := os.WriteFile(src, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	live, err := remi.OpenLive(dir, "geo", remi.LiveOptions{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	if err := s.AddLiveKB("geo", live); err != nil {
		t.Fatal(err)
	}
	return s, live
}

func upsertJSON(s, p, o string) FactOp {
	return FactOp{S: "<" + s + ">", P: "<" + p + ">", O: "<" + o + ">"}
}

func liveKBStats(t *testing.T, h http.Handler, name string) KBInfo {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/kb/"+name+"/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body.String())
	}
	return decode[KBStatsResponse](t, rec).KBInfo
}

func TestFactsEndpointDurableAck(t *testing.T) {
	s, live := liveServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()

	body, _ := json.Marshal(FactsRequest{Ops: []FactOp{
		upsertJSON(tinyNS+"Atlantis", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", tinyOnt+"City"),
		upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica"),
		{Op: "retract", S: "<" + tinyNS + "Rennes>", P: "<" + tinyOnt + "mayor>", O: "<" + tinyNS + "MayorRennes>"},
	}})
	req := httptest.NewRequest("POST", "/v1/kb/geo/facts", strings.NewReader(string(body)))
	req.Header.Set(headerRequestID, "facts-req-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("facts: %d %s", rec.Code, rec.Body.String())
	}
	out := decode[FactsResponse](t, rec)
	if out.KB != "geo" || out.Applied != 3 || out.Changed != 3 {
		t.Fatalf("ack = %+v", out)
	}
	if out.RequestID != "facts-req-1" {
		t.Fatalf("request id not carried end to end: %q", out.RequestID)
	}
	if out.Generation != 1 || out.WalBytes == 0 || out.WalRecords != 1 {
		t.Fatalf("durability fields off: %+v", out)
	}
	// The ack implies the batch is on disk.
	if st := live.Stats(); st.WalRecords != 1 || st.FactsApplied != 3 {
		t.Fatalf("live stats after ack: %+v", st)
	}
	// Per-KB stats expose the live fields.
	info := liveKBStats(t, h, "geo")
	if !info.Live || info.FactsApplied != 3 || info.WalBytes == 0 || info.Generation != 1 {
		t.Fatalf("kb stats = %+v", info)
	}
	if info.PendingAdds == 0 || info.PendingDels != 1 {
		t.Fatalf("overlay sizing not surfaced: %+v", info)
	}
	// The new entity is immediately mineable on the swapped-in generation.
	rec = postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Atlantis"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mine on mutated KB: %d %s", rec.Code, rec.Body.String())
	}
	// An idempotent re-send acks with changed=0 and a fresh generation.
	rec = postJSON(t, h, "/v1/kb/geo/facts", FactsRequest{Ops: []FactOp{
		upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica"),
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("re-send: %d %s", rec.Code, rec.Body.String())
	}
	if out := decode[FactsResponse](t, rec); out.Changed != 0 || out.Applied != 1 || out.Generation != 2 {
		t.Fatalf("idempotent re-send ack = %+v", out)
	}
}

func TestFactsMutationInvalidatesCachedAnswers(t *testing.T) {
	s, _ := liveServer(t, Options{DefaultTimeout: 10 * time.Second, ResultCache: 64})
	h := s.Handler()
	targets := MineRequest{Targets: []string{tinyNS + "Rennes"}}

	rec := postJSON(t, h, "/v1/kb/geo/mine", targets)
	if rec.Code != http.StatusOK {
		t.Fatalf("mine: %d %s", rec.Code, rec.Body.String())
	}
	before := decode[MineResponse](t, rec)
	if !before.Found {
		t.Fatalf("no RE for Rennes: %s", rec.Body.String())
	}
	// Warm the cache with a second identical query.
	postJSON(t, h, "/v1/kb/geo/mine", targets)

	// Give Nantes the same mayor: whatever discriminated Rennes via that
	// mayor is no longer a referring expression, so a cached answer would
	// now be wrong.
	rec = postJSON(t, h, "/v1/kb/geo/facts", FactsRequest{Ops: []FactOp{
		upsertJSON(tinyNS+"Nantes", tinyOnt+"mayor", tinyNS+"MayorRennes"),
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("facts: %d %s", rec.Code, rec.Body.String())
	}
	rec = postJSON(t, h, "/v1/kb/geo/mine", targets)
	if rec.Code != http.StatusOK {
		t.Fatalf("mine after mutation: %d %s", rec.Code, rec.Body.String())
	}
	after := decode[MineResponse](t, rec)
	if after.Found && after.Solution != nil && before.Solution != nil &&
		after.Solution.Expression == before.Solution.Expression {
		t.Fatalf("stale expression served after mutation: %q", after.Solution.Expression)
	}
}

func TestFactsValidationErrors(t *testing.T) {
	s, _ := liveServer(t, Options{})
	h := s.Handler()

	// Terms stay minimal so the batch clears the byte cap and exercises the
	// op-count cap specifically.
	tooMany := FactsRequest{Ops: make([]FactOp, maxFactOps+1)}
	for i := range tooMany.Ops {
		tooMany.Ops[i] = FactOp{S: "<a:s>", P: "<a:p>", O: "<a:o>"}
	}
	tooManyBody, _ := json.Marshal(tooMany)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", "{not json", http.StatusBadRequest},
		{"empty ops", `{"ops":[]}`, http.StatusBadRequest},
		{"unknown verb", `{"ops":[{"op":"replace","s":"<a:s>","p":"<a:p>","o":"<a:o>"}]}`, http.StatusBadRequest},
		{"unparsable term", `{"ops":[{"s":"not a term","p":"<a:p>","o":"<a:o>"}]}`, http.StatusBadRequest},
		{"literal subject", `{"ops":[{"s":"\"lit\"","p":"<a:p>","o":"<a:o>"}]}`, http.StatusBadRequest},
		{"literal predicate", `{"ops":[{"s":"<a:s>","p":"\"p\"","o":"<a:o>"}]}`, http.StatusBadRequest},
		{"inverse predicate", `{"ops":[{"s":"<a:s>","p":"<` + tinyOnt + `capital` + "⁻¹" + `>","o":"<a:o>"}]}`, http.StatusBadRequest},
		{"batch cap", string(tooManyBody), http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", "/v1/kb/geo/facts", strings.NewReader(tc.body))
		req.Header.Set(headerRequestID, "vreq-"+tc.name)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		er := decode[ErrorResponse](t, rec)
		if er.Error == "" || er.RequestID != "vreq-"+tc.name {
			t.Errorf("%s: error envelope = %+v", tc.name, er)
		}
	}
	// A rejected batch must leave no durable or visible trace.
	if info := liveKBStats(t, h, "geo"); info.FactsApplied != 0 || info.WalRecords != 0 || info.Generation != 0 {
		t.Fatalf("rejected batches left state: %+v", info)
	}
}

func TestCompileEndpoint(t *testing.T) {
	s, live := liveServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()

	rec := postJSON(t, h, "/v1/kb/geo/facts", FactsRequest{Ops: []FactOp{
		upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica"),
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("facts: %d %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest("POST", "/v1/kb/geo/admin/compile", nil)
	req.Header.Set(headerRequestID, "compile-req-1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("compile: %d %s", rec.Code, rec.Body.String())
	}
	out := decode[CompileResponse](t, rec)
	if out.KB != "geo" || out.Compactions != 1 || out.WalBytes != 0 || out.RequestID != "compile-req-1" {
		t.Fatalf("compile ack = %+v", out)
	}
	info := liveKBStats(t, h, "geo")
	if info.LastCompactionGeneration != info.Generation || info.Generation != out.Generation {
		t.Fatalf("compaction generation not recorded: %+v", info)
	}
	if info.WalRecords != 0 || info.PendingAdds != 0 {
		t.Fatalf("WAL/overlay not folded: %+v", info)
	}
	if st := live.Stats(); st.Compactions != 1 {
		t.Fatalf("live stats: %+v", st)
	}
	// The compacted generation still answers the mutated facts.
	rec = postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Guyana"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mine after compile: %d %s", rec.Code, rec.Body.String())
	}
	// The body form routes too.
	rec = postJSON(t, h, "/v1/admin/compile", CompileRequest{KB: "geo"})
	if rec.Code != http.StatusOK {
		t.Fatalf("compile by body: %d %s", rec.Code, rec.Body.String())
	}
	if out := decode[CompileResponse](t, rec); out.Compactions != 2 {
		t.Fatalf("second compile ack = %+v", out)
	}
}

func TestCompileWhileCompacting(t *testing.T) {
	s, _ := liveServer(t, Options{})
	h := s.Handler()
	base := faults.Hits(faults.CompactCrash)

	// Park the first compile inside compaction's critical window, then race
	// a second one against it.
	disarm := faults.Arm(faults.CompactCrash, faults.Injection{Block: true})
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/kb/geo/admin/compile", nil))
		first <- rec
	}()
	deadline := time.Now().Add(5 * time.Second)
	for faults.Hits(faults.CompactCrash) == base {
		if time.Now().After(deadline) {
			disarm()
			t.Fatal("first compile never reached the fault point")
		}
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/kb/geo/admin/compile", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("concurrent compile: %d, want 409 (%s)", rec.Code, rec.Body.String())
	}
	if er := decode[ErrorResponse](t, rec); er.Error == "" {
		t.Fatal("409 without an error body")
	}
	disarm()
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("parked compile: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFactsChaosWalSyncFailure(t *testing.T) {
	s, _ := liveServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	ops := FactsRequest{Ops: []FactOp{upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica")}}

	disarm := faults.Arm(faults.WalSync, faults.Injection{Err: fmt.Errorf("injected: disk full")})
	rec := postJSON(t, h, "/v1/kb/geo/facts", ops)
	disarm()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unsynced batch: %d, want 500 (%s)", rec.Code, rec.Body.String())
	}
	// Nothing was acknowledged: no generation bump, no applied count, and
	// the entity stays unknown to mining.
	info := liveKBStats(t, h, "geo")
	if info.Generation != 0 || info.FactsApplied != 0 {
		t.Fatalf("failed sync leaked state: %+v", info)
	}
	rec = postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Atlantis"}})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unacked fact visible to mining: %d", rec.Code)
	}
	// The log survives a sync failure: the client retry succeeds.
	rec = postJSON(t, h, "/v1/kb/geo/facts", ops)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFactsChaosTornAppend(t *testing.T) {
	s, _ := liveServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	ops := FactsRequest{Ops: []FactOp{upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica")}}

	disarm := faults.Arm(faults.WalTorn, faults.Injection{Err: fmt.Errorf("injected: power loss")})
	rec := postJSON(t, h, "/v1/kb/geo/facts", ops)
	disarm()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("torn append: %d, want 500 (%s)", rec.Code, rec.Body.String())
	}
	// The log handle is failed — further mutations are refused — but the
	// read path keeps serving and the KB is not quarantined.
	rec = postJSON(t, h, "/v1/kb/geo/facts", ops)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("append on failed log: %d, want 500", rec.Code)
	}
	rec = postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("read path degraded by torn WAL: %d %s", rec.Code, rec.Body.String())
	}
	if info := liveKBStats(t, h, "geo"); info.QuarantinedForMS != 0 || info.ReloadFailures != 0 {
		t.Fatalf("torn WAL conflated with reload quarantine: %+v", info)
	}
}

func TestCompileChaosCrashContainment(t *testing.T) {
	s, live := liveServer(t, Options{DefaultTimeout: 10 * time.Second})
	h := s.Handler()
	rec := postJSON(t, h, "/v1/kb/geo/facts", FactsRequest{Ops: []FactOp{
		upsertJSON(tinyNS+"Atlantis", tinyOnt+"in", tinyNS+"SouthAmerica"),
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("facts: %d %s", rec.Code, rec.Body.String())
	}

	disarm := faults.Arm(faults.CompactCrash, faults.Injection{Err: fmt.Errorf("injected: killed mid-compaction")})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/kb/geo/admin/compile", nil))
	disarm()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("crashed compile: %d, want 500 (%s)", rec.Code, rec.Body.String())
	}
	// Containment: the WAL still holds the acked batch, the serving
	// generation is unchanged, mutations still work, and the KB is not
	// quarantined (a compaction crash is not a source failure).
	info := liveKBStats(t, h, "geo")
	if info.WalRecords != 1 || info.Generation != 1 || info.LastCompactionGeneration != 0 {
		t.Fatalf("crashed compile mutated state: %+v", info)
	}
	if info.QuarantinedForMS != 0 || info.ReloadFailures != 0 {
		t.Fatalf("compaction crash quarantined the KB: %+v", info)
	}
	if st := live.Stats(); st.Compactions != 0 {
		t.Fatalf("compaction counted despite crash: %+v", st)
	}
	rec2 := postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Atlantis"}})
	if rec2.Code != http.StatusOK {
		t.Fatalf("acked fact lost after compile crash: %d %s", rec2.Code, rec2.Body.String())
	}
	// With the fault gone, the next compile succeeds outright.
	rec2 = httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/kb/geo/admin/compile", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("compile after crash: %d %s", rec2.Code, rec2.Body.String())
	}
}

func TestRetireGraceKeepsServingGeneration(t *testing.T) {
	s, _ := liveServer(t, Options{DefaultTimeout: 10 * time.Second, RetireGrace: 10 * time.Millisecond})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		rec := postJSON(t, h, "/v1/kb/geo/facts", FactsRequest{Ops: []FactOp{
			upsertJSON(tinyNS+"Atlantis", tinyOnt+fmt.Sprintf("p%d", i), tinyNS+"SouthAmerica"),
		}})
		if rec.Code != http.StatusOK {
			t.Fatalf("facts %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	// Let every retirement timer fire, then prove the serving generation —
	// the only one the retire path must never touch — still answers.
	time.Sleep(50 * time.Millisecond)
	rec := postJSON(t, h, "/v1/kb/geo/mine", MineRequest{Targets: []string{tinyNS + "Rennes"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("serving generation broken after retirements: %d %s", rec.Code, rec.Body.String())
	}
	if info := liveKBStats(t, h, "geo"); info.Generation != 3 {
		t.Fatalf("generation = %d, want 3", info.Generation)
	}
}
