package server

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// quotaLimiter is the per-client admission layer in front of the shared job
// pool: one token bucket per client key, refilled at a fixed rate. It
// answers a different question than the pool's queue — not "is the server
// overloaded" but "is this client taking more than its share" — so its
// rejections carry a Retry-After derived from the client's own deficit,
// not from the pool backlog.
type quotaLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*quotaBucket
	lastGC  time.Time
}

type quotaBucket struct {
	tokens float64
	last   time.Time
}

// quotaGCInterval bounds how often idle buckets are swept; a bucket that
// has been full (i.e. unused) since the last sweep holds no state worth
// keeping.
const quotaGCInterval = time.Minute

func newQuotaLimiter(rate, burst float64) *quotaLimiter {
	if burst < 1 {
		burst = 1
	}
	return &quotaLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*quotaBucket),
		lastGC:  time.Now(),
	}
}

// allow charges n tokens against key's bucket. When the bucket cannot cover
// the charge nothing is deducted and retry reports how long the client must
// wait for the deficit to refill. Charges above the burst are clamped to it
// so a maximal batch costs a full bucket instead of being unservable.
func (q *quotaLimiter) allow(key string, n float64) (ok bool, retry time.Duration) {
	if n > q.burst {
		n = q.burst
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if now.Sub(q.lastGC) >= quotaGCInterval {
		q.gcLocked(now)
	}
	b := q.buckets[key]
	if b == nil {
		b = &quotaBucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	return false, time.Duration((n - b.tokens) / q.rate * float64(time.Second))
}

// gcLocked drops buckets that refilled to the brim: a full bucket is
// indistinguishable from a fresh one, so evicting it loses nothing.
func (q *quotaLimiter) gcLocked(now time.Time) {
	q.lastGC = now
	for key, b := range q.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*q.rate >= q.burst {
			delete(q.buckets, key)
		}
	}
}

// clients reports the live bucket count (clients seen recently enough to
// still hold a deficit).
func (q *quotaLimiter) clients() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// clientKey identifies the quota principal of a request: the X-Client-Id
// header when the client sends one (trusted deployments, load tests), else
// the remote IP.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
