package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server/faults"
	"github.com/remi-kb/remi/internal/server/jobs"
)

// errBatchAborted finalizes batch members whose mining phase exited before
// delivering them (phase failure, cancellation, panic).
var errBatchAborted = errors.New("batch mining phase aborted")

// batchPlan is one validated mine:batch request decomposed into per-set
// outcomes: validation failures and cache hits are answered in place,
// repeats collapse onto their first occurrence, and the remainder becomes
// member jobs in the unified registry — joinable by (and joining) every
// other mining path — mined together by one pool-executed phase job.
type batchPlan struct {
	e      *kbEntry
	shared MineRequest
	opts   []remi.MineOption
	reqID  string

	items      []BatchMineItem
	agg        BatchMineStats
	keyOf      []string
	firstOfKey map[string]int
	runIdx     []int      // first-occurrence indexes that need mining
	runSets    [][]string // their normalized target sets

	waits  map[int]*jobs.Job // member job per runnable index
	joined map[int]bool      // member joined a foreign in-flight run
	phase  *jobs.Job         // pool job mining the new members (nil if none)
}

// fill records one per-set outcome into its slot and aggregate bucket.
func (p *batchPlan) fill(i int, item BatchMineItem) {
	p.items[i] = item
	switch {
	case item.Response == nil:
		p.agg.Errors++
	case item.Response.Deduplicated:
		p.agg.Deduplicated++
	case item.Response.Cached:
		p.agg.Cached++
	default:
		p.agg.Mined++
		p.agg.QueueBuildMS += item.Response.Stats.QueueBuildMS
		p.agg.SearchMS += item.Response.Stats.SearchMS
	}
}

// buildBatchPlan validates the request and runs pass 1: normalize each set,
// collapse in-batch repeats onto the first occurrence of their key, serve
// cache hits, and collect the sets that actually need mining. On error the
// returned status is the HTTP code to answer with.
func (s *Server) buildBatchPlan(r *http.Request, q *BatchMineRequest) (*batchPlan, int, error) {
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		return nil, errStatus(err), err
	}
	if len(q.Sets) == 0 {
		return nil, http.StatusBadRequest, errors.New("sets is required")
	}
	if len(q.Sets) > s.opts.MaxBatchSets {
		return nil, http.StatusBadRequest,
			fmt.Errorf("%d sets exceed the batch limit of %d", len(q.Sets), s.opts.MaxBatchSets)
	}
	// Validate and canonicalize the shared options once; the canonical
	// fields then feed every per-set dedup/cache key.
	shared := MineRequest{
		KB:         e.name,
		Metric:     q.Metric,
		Language:   q.Language,
		Workers:    q.Workers,
		TimeoutMS:  q.TimeoutMS,
		TopK:       q.TopK,
		Exceptions: q.Exceptions,
	}
	opts, err := s.mineOptions(&shared)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	p := &batchPlan{
		e:          e,
		shared:     shared,
		opts:       opts,
		reqID:      requestIDOf(r),
		items:      make([]BatchMineItem, len(q.Sets)),
		agg:        BatchMineStats{Sets: len(q.Sets)},
		keyOf:      make([]string, len(q.Sets)),
		firstOfKey: make(map[string]int, len(q.Sets)),
		waits:      make(map[int]*jobs.Job),
		joined:     make(map[int]bool),
	}
	for i, targets := range q.Sets {
		qi := shared
		qi.Targets = targets
		qi.normalize()
		if len(qi.Targets) == 0 {
			p.fill(i, BatchMineItem{Error: "targets is required", Status: http.StatusBadRequest})
			continue
		}
		if len(qi.Targets) > s.opts.MaxTargets {
			p.fill(i, BatchMineItem{
				Error:  fmt.Sprintf("%d targets exceed the limit of %d", len(qi.Targets), s.opts.MaxTargets),
				Status: http.StatusBadRequest,
			})
			continue
		}
		key := s.cacheKey(e, qi.key())
		p.keyOf[i] = key
		if _, ok := p.firstOfKey[key]; ok {
			continue // filled from the first occurrence in the repeats pass
		}
		p.firstOfKey[key] = i
		if res, ok := s.cachedResult(key); ok {
			p.fill(i, BatchMineItem{Response: wireResult(res, false, true)})
			continue
		}
		p.runIdx = append(p.runIdx, i)
		p.runSets = append(p.runSets, qi.Targets)
	}
	return p, 0, nil
}

// submitBatchJobs registers the plan's runnable sets in the unified
// registry: each becomes an externally-executed member job under the same
// flight key single /v1/mine requests use — so a batch entry joins a mine
// already in flight, and a later single request joins a batch entry — and
// the genuinely new members are mined by one pool-executed phase job they
// are bound to. On error nothing is left running and every planned member
// reference is released.
func (s *Server) submitBatchJobs(p *batchPlan) error {
	var newIdx []int
	var newSets [][]string
	var members []*jobs.Job
	// The watchdog bound covers the whole phase: per-set budgets overlap
	// under concurrency, so serial execution of every new set is the worst
	// honest case — anything past that is a wedged evaluator. Members share
	// the phase bound (a member may legitimately finish last in the batch).
	phaseDeadline := s.jobDeadline(time.Duration(p.shared.TimeoutMS) * time.Millisecond * time.Duration(len(p.runIdx)))
	for pos, i := range p.runIdx {
		j, joined := s.jobs.External(jobs.SubmitOpts{
			Key:      p.keyOf[i],
			Kind:     jobKindMine,
			Meta:     jobMeta{kb: p.e.name, requestID: p.reqID},
			Deadline: phaseDeadline,
		})
		p.waits[i] = j
		if joined {
			p.joined[i] = true
			s.dedupedHits.Add(1)
			continue
		}
		newIdx = append(newIdx, i)
		newSets = append(newSets, p.runSets[pos])
		members = append(members, j)
	}
	if len(members) == 0 {
		return nil
	}
	phase, _, err := s.jobs.Submit(jobs.SubmitOpts{
		Kind:     jobKindBatchPhase,
		Meta:     jobMeta{kb: p.e.name, requestID: p.reqID},
		Run:      s.batchPhaseRun(p, newIdx, newSets, members),
		Priority: jobs.PriorityBatch,
		Deadline: phaseDeadline,
	})
	if err != nil {
		for _, m := range members {
			m.Complete(nil, err)
		}
		s.releaseBatch(p)
		return err
	}
	for _, m := range members {
		s.jobs.Bind(m, phase)
	}
	p.phase = phase
	return nil
}

// releaseBatch drops the plan's job references without waiting (error paths
// that answer before collecting).
func (s *Server) releaseBatch(p *batchPlan) {
	for _, j := range p.waits {
		s.jobs.Release(j)
	}
	p.waits = make(map[int]*jobs.Job)
	if p.phase != nil {
		s.jobs.Release(p.phase)
		p.phase = nil
	}
}

// batchPhaseRun mines the plan's new member sets in one facade pass —
// keeping the queue-prep and evaluator-cache sharing MineBatchEach provides
// — and completes each member as its set finishes, so waiters (this batch's
// collector, joined single requests, other batches) unblock per set rather
// than per batch.
func (s *Server) batchPhaseRun(p *batchPlan, idx []int, sets [][]string, members []*jobs.Job) jobs.RunFunc {
	return func(ctx context.Context, phase *jobs.Job) (any, error) {
		defer func() {
			// Whatever ends this run — error, cancellation, panic — no member
			// may dangle unfinished. Complete is a no-op on delivered ones.
			cause := errBatchAborted
			if err := ctx.Err(); err != nil {
				cause = fmt.Errorf("%w: %v", errBatchAborted, err)
			}
			for _, m := range members {
				m.Complete(nil, cause)
			}
		}()
		// Chaos hooks after the containment defer: an injected panic or wedge
		// must exercise the same member cleanup a real evaluator bug would.
		if err := faults.Fire(ctx, faults.JobStuck); err != nil {
			return nil, err
		}
		if err := faults.Fire(ctx, faults.MinePanic); err != nil {
			return nil, err
		}
		bopts := append(p.opts[:len(p.opts):len(p.opts)], remi.WithBatchConcurrency(s.opts.BatchWorkers))
		br, err := s.mineBatchEachContext(p.e, ctx, sets, func(bi int, entry remi.BatchEntry) {
			m := members[bi]
			if entry.Err != nil {
				m.Complete(nil, entry.Err)
				return
			}
			res := entry.Result
			s.mineRuns.Add(1)
			s.recordRun(res, false)
			if s.results != nil && !res.Stats.TimedOut {
				s.results.Put(p.keyOf[idx[bi]], res)
			}
			m.Complete(res, nil)
		}, bopts...)
		if err != nil {
			return nil, err
		}
		// Cache traffic is folded once from the exact whole-batch totals
		// (per-entry counters can attribute a concurrent neighbor's lookups
		// and would overcount).
		s.recordBatchCache(br.CacheHits, br.CacheMisses)
		return br, nil
	}
}

// collectBatch waits for every member job and delivers outcomes in
// completion order through deliver (never concurrently). It returns
// ctx.Err() when the caller's context ended first; member references are
// dropped either way, so undelivered runs are abandoned per the registry's
// interest rules.
func (s *Server) collectBatch(ctx context.Context, p *batchPlan, deliver func(i int, item BatchMineItem)) error {
	type outcome struct {
		i    int
		item BatchMineItem
	}
	ch := make(chan outcome)
	var wg sync.WaitGroup
	for i, j := range p.waits {
		wg.Add(1)
		go func(i int, j *jobs.Job) {
			defer wg.Done()
			v, err := s.jobs.Wait(ctx, j)
			var item BatchMineItem
			if err != nil {
				item = BatchMineItem{Error: err.Error(), Status: errStatus(err)}
			} else {
				item = BatchMineItem{Response: wireResult(v.(*remi.Result), p.joined[i], false)}
			}
			select {
			case ch <- outcome{i, item}:
			case <-ctx.Done():
			}
		}(i, j)
	}
	go func() { wg.Wait(); close(ch) }()
	for o := range ch {
		deliver(o.i, o.item)
	}
	return ctx.Err()
}

// finishBatch waits out the phase job for the exact whole-batch evaluator
// totals and fills the repeat entries: duplicates of an earlier set share
// its outcome, flagged as deduplicated (error outcomes are shared
// verbatim). Safe with a nil phase or an already-ended context.
func (s *Server) finishBatch(ctx context.Context, p *batchPlan) {
	if p.phase != nil {
		if v, err := s.jobs.Wait(ctx, p.phase); err == nil {
			if br, ok := v.(*remi.BatchResult); ok && br != nil {
				p.agg.CacheHits, p.agg.CacheMisses = br.CacheHits, br.CacheMisses
			}
		}
		p.phase = nil
	}
	for i := range p.items {
		key := p.keyOf[i]
		if key == "" {
			continue // per-set validation error, already filled
		}
		first := p.firstOfKey[key]
		if first == i {
			continue
		}
		src := p.items[first]
		if src.Response != nil {
			dup := *src.Response
			dup.Deduplicated = true
			p.fill(i, BatchMineItem{Response: &dup})
		} else {
			p.fill(i, src)
		}
	}
}

// handleMineBatch is POST /v1/mine:batch: many target sets, one KB, one
// shared mining pass, one JSON document with one entry per input set,
// order-preserving. Per-set failures (empty set, oversized set, unknown
// entity) occupy their own entry and never fail the batch. Each runnable
// set is a member job in the unified registry, so identical work in flight
// anywhere — a single mine, another batch, an async job — is joined rather
// than repeated; the new sets share one mining phase on the worker pool.
func (s *Server) handleMineBatch(w http.ResponseWriter, r *http.Request) {
	s.cMineBatch.requests.Add(1)
	var q BatchMineRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cMineBatch, status, err)
		return
	}
	if !s.admitMining(w, r, &s.cMineBatch, len(q.Sets)) {
		return
	}
	p, status, err := s.buildBatchPlan(r, &q)
	if err != nil {
		s.writeError(w, &s.cMineBatch, status, err)
		return
	}
	if err := s.submitBatchJobs(p); err != nil {
		if errors.Is(err, jobs.ErrSaturated) {
			s.shedLoad(w, &s.cMineBatch, err)
			return
		}
		s.writeError(w, &s.cMineBatch, errStatus(err), err)
		return
	}
	ctxErr := s.collectBatch(r.Context(), p, p.fill)
	s.finishBatch(r.Context(), p)
	if ctxErr != nil {
		// The client went away (or its deadline passed) mid-batch: the
		// per-set results are partial at best, and nobody is reading.
		s.writeError(w, &s.cMineBatch, errStatus(ctxErr), ctxErr)
		return
	}
	writeJSON(w, http.StatusOK, BatchMineResponse{KB: p.e.name, Results: p.items, Stats: p.agg})
}
