package server

import (
	"errors"
	"fmt"
	"net/http"

	remi "github.com/remi-kb/remi"
)

// handleMineBatch is POST /v1/mine:batch: many target sets, one KB, one
// shared mining pass. Per-set work is minimized before the facade runs:
// sets that repeat inside the batch collapse onto one slot via the same
// normalized keys the in-flight dedup uses, sets already in the completed-
// result LRU are answered from memory, and only the remainder is handed to
// System.MineBatch (which shares queue-prep work and the evaluator cache
// across them, fanning sets over a bounded worker pool). The response is
// one JSON document with one entry per input set, order-preserving; per-set
// failures (empty set, oversized set, unknown entity) occupy their own
// entry and never fail the batch.
func (s *Server) handleMineBatch(w http.ResponseWriter, r *http.Request) {
	s.cMineBatch.requests.Add(1)
	var q BatchMineRequest
	if tooLarge, err := decodeBody(w, r, &q); err != nil {
		status := http.StatusBadRequest
		if tooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, &s.cMineBatch, status, err)
		return
	}
	e, err := s.kbFromRequest(r, q.KB)
	if err != nil {
		s.writeError(w, &s.cMineBatch, errStatus(err), err)
		return
	}
	if len(q.Sets) == 0 {
		s.writeError(w, &s.cMineBatch, http.StatusBadRequest, errors.New("sets is required"))
		return
	}
	if len(q.Sets) > s.opts.MaxBatchSets {
		s.writeError(w, &s.cMineBatch, http.StatusBadRequest,
			fmt.Errorf("%d sets exceed the batch limit of %d", len(q.Sets), s.opts.MaxBatchSets))
		return
	}
	// Validate and canonicalize the shared options once; the canonical
	// fields then feed every per-set dedup/cache key.
	shared := MineRequest{
		KB:         e.name,
		Metric:     q.Metric,
		Language:   q.Language,
		Workers:    q.Workers,
		TimeoutMS:  q.TimeoutMS,
		TopK:       q.TopK,
		Exceptions: q.Exceptions,
	}
	opts, err := s.mineOptions(&shared)
	if err != nil {
		s.writeError(w, &s.cMineBatch, http.StatusBadRequest, err)
		return
	}

	items := make([]BatchMineItem, len(q.Sets))
	agg := BatchMineStats{Sets: len(q.Sets)}
	errItem := func(i int, status int, err error) {
		items[i] = BatchMineItem{Error: err.Error(), Status: status}
		agg.Errors++
	}

	// Pass 1: normalize each set, collapse in-batch repeats onto the first
	// occurrence of their key, serve cache hits, and collect the sets that
	// actually need mining.
	keyOf := make([]string, len(q.Sets))
	firstOfKey := make(map[string]int, len(q.Sets))
	var runSets [][]string
	var runIdx []int
	for i, targets := range q.Sets {
		qi := shared
		qi.Targets = targets
		qi.normalize()
		if len(qi.Targets) == 0 {
			errItem(i, http.StatusBadRequest, errors.New("targets is required"))
			continue
		}
		if len(qi.Targets) > s.opts.MaxTargets {
			errItem(i, http.StatusBadRequest,
				fmt.Errorf("%d targets exceed the limit of %d", len(qi.Targets), s.opts.MaxTargets))
			continue
		}
		key := s.cacheKey(e, qi.key())
		keyOf[i] = key
		if _, ok := firstOfKey[key]; ok {
			continue // filled from the first occurrence in pass 2
		}
		firstOfKey[key] = i
		if s.results != nil {
			if res, ok := s.results.Get(key); ok {
				items[i] = BatchMineItem{Response: wireResult(res, false, true)}
				agg.Cached++
				continue
			}
		}
		runSets = append(runSets, qi.Targets)
		runIdx = append(runIdx, i)
	}

	if len(runSets) > 0 {
		bopts := append(opts, remi.WithBatchConcurrency(s.opts.BatchWorkers))
		br, err := s.mineBatchContext(e, r.Context(), runSets, bopts...)
		if err == nil && r.Context().Err() != nil {
			// The client went away (or its deadline passed) mid-batch: the
			// per-set results are partial at best, and nobody is reading.
			err = r.Context().Err()
		}
		if err != nil {
			s.writeError(w, &s.cMineBatch, errStatus(err), err)
			return
		}
		for bi, entry := range br.Entries {
			i := runIdx[bi]
			if entry.Err != nil {
				errItem(i, errStatus(entry.Err), entry.Err)
				continue
			}
			res := entry.Result
			s.mineRuns.Add(1)
			s.recordRun(res, false)
			if s.results != nil && !res.Stats.TimedOut {
				s.results.Put(keyOf[i], res)
			}
			items[i] = BatchMineItem{Response: wireResult(res, false, false)}
			agg.Mined++
			st := wireStats(res.Stats)
			agg.QueueBuildMS += st.QueueBuildMS
			agg.SearchMS += st.SearchMS
		}
		// Cache traffic is aggregated once from the exact whole-batch
		// totals (per-entry counters can attribute a concurrent neighbor's
		// lookups and would overcount here).
		agg.CacheHits, agg.CacheMisses = br.CacheHits, br.CacheMisses
		s.recordBatchCache(br.CacheHits, br.CacheMisses)
	}

	// Pass 2: repeats of an earlier set share its outcome, flagged as
	// deduplicated (error outcomes are shared verbatim).
	for i := range q.Sets {
		key := keyOf[i]
		if key == "" {
			continue // per-set validation error, already filled
		}
		first := firstOfKey[key]
		if first == i {
			continue
		}
		src := items[first]
		if src.Response != nil {
			dup := *src.Response
			dup.Deduplicated = true
			items[i] = BatchMineItem{Response: &dup}
			agg.Deduplicated++
		} else {
			items[i] = src
			agg.Errors++
		}
	}

	writeJSON(w, http.StatusOK, BatchMineResponse{KB: e.name, Results: items, Stats: agg})
}
