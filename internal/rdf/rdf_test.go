package rdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTermIRI(t *testing.T) {
	tm, err := ParseTerm("<http://example.org/Paris>")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind != IRI || tm.Value != "http://example.org/Paris" {
		t.Fatalf("got %+v", tm)
	}
}

func TestParseTermBlank(t *testing.T) {
	tm, err := ParseTerm("_:b42")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind != Blank || tm.Value != "b42" {
		t.Fatalf("got %+v", tm)
	}
}

func TestParseTermLiteralPlain(t *testing.T) {
	tm, err := ParseTerm(`"hello world"`)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind != Literal || tm.Value != "hello world" {
		t.Fatalf("got %+v", tm)
	}
}

func TestParseTermLiteralTyped(t *testing.T) {
	tm, err := ParseTerm(`"42"^^<http://www.w3.org/2001/XMLSchema#integer>`)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind != Literal {
		t.Fatalf("got %+v", tm)
	}
	if got := tm.LocalName(); got != "42" {
		t.Fatalf("LocalName = %q", got)
	}
}

func TestParseTermLiteralLang(t *testing.T) {
	tm, err := ParseTerm(`"bonjour"@fr`)
	if err != nil {
		t.Fatal(err)
	}
	if tm.LocalName() != "bonjour" {
		t.Fatalf("got %+v", tm)
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, bad := range []string{"", "<unterminated", `"unterminated`, "plainword", `"lit"^^garbage`} {
		if _, err := ParseTerm(bad); err == nil {
			t.Errorf("ParseTerm(%q): expected error", bad)
		}
	}
}

func TestTermStringRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewBlank("node7"),
		NewLiteral("plain"),
		NewLiteral("with \"quotes\" and \\slash\\"),
		NewLiteral("tab\there"),
		NewLiteral(`42"^^<http://www.w3.org/2001/XMLSchema#integer>`),
		NewLiteral(`hi"@en`),
	}
	for _, tm := range terms {
		got, err := ParseTerm(tm.String())
		if err != nil {
			t.Fatalf("ParseTerm(%s): %v", tm.String(), err)
		}
		if got != tm {
			t.Errorf("round trip %q: got %+v want %+v", tm.String(), got, tm)
		}
	}
}

func TestTripleLineRoundTrip(t *testing.T) {
	tr := NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral("a b c"))
	got, ok, err := ParseTripleLine(tr.String())
	if err != nil || !ok {
		t.Fatalf("parse: %v ok=%v", err, ok)
	}
	if got != tr {
		t.Fatalf("got %v want %v", got, tr)
	}
}

func TestParseTripleLineSkips(t *testing.T) {
	for _, line := range []string{"", "   ", "# a comment"} {
		_, ok, err := ParseTripleLine(line)
		if err != nil || ok {
			t.Errorf("line %q: ok=%v err=%v", line, ok, err)
		}
	}
}

func TestParseTripleLineRejects(t *testing.T) {
	bad := []string{
		"<http://a> <http://p> .",                           // 2 terms
		`"lit" <http://p> <http://o> .`,                     // literal subject
		"<http://a> _:b <http://o> .",                       // blank predicate
		"<http://a> <http://p> <http://o> <http://extra> .", // 4 terms
	}
	for _, line := range bad {
		if _, ok, err := ParseTripleLine(line); err == nil && ok {
			t.Errorf("line %q: expected rejection", line)
		}
	}
}

func TestReadWriteAll(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://e/s1"), NewIRI("http://e/p"), NewIRI("http://e/o1")),
		NewTriple(NewIRI("http://e/s2"), NewIRI("http://e/p"), NewLiteral("lit with spaces")),
		NewTriple(NewBlank("b1"), NewIRI("http://e/q"), NewBlank("b2")),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, triples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, triples) {
		t.Fatalf("got %v want %v", got, triples)
	}
}

func TestDictionaryBasics(t *testing.T) {
	d := NewDictionary()
	a := NewIRI("http://e/a")
	b := NewLiteral("b")
	ida := d.Encode(a)
	idb := d.Encode(b)
	if ida == idb {
		t.Fatal("distinct terms share an id")
	}
	if d.Encode(a) != ida {
		t.Fatal("re-encoding changed the id")
	}
	if d.Decode(ida) != a || d.Decode(idb) != b {
		t.Fatal("decode mismatch")
	}
	if _, ok := d.Lookup(NewIRI("http://absent")); ok {
		t.Fatal("lookup of absent term succeeded")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictionaryRoundTripProperty(t *testing.T) {
	d := NewDictionary()
	f := func(kind uint8, val string) bool {
		tm := Term{Kind: Kind(kind % 3), Value: val}
		return d.Decode(d.Encode(tm)) == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupTriples(t *testing.T) {
	d := NewDictionary()
	mk := func(s, p, o string) IDTriple {
		return d.EncodeTriple(NewTriple(NewIRI(s), NewIRI(p), NewIRI(o)))
	}
	ts := []IDTriple{mk("a", "p", "b"), mk("a", "p", "b"), mk("a", "q", "c"), mk("a", "p", "b")}
	got := DedupTriples(ts)
	if len(got) != 2 {
		t.Fatalf("got %d triples, want 2", len(got))
	}
}

func TestSortTriplesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := make([]IDTriple, 100)
	for i := range ts {
		ts[i] = IDTriple{S: ID(rng.Intn(10) + 1), P: ID(rng.Intn(5) + 1), O: ID(rng.Intn(20) + 1)}
	}
	SortTriples(ts)
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.S > b.S || (a.S == b.S && a.P > b.P) || (a.S == b.S && a.P == b.P && a.O > b.O) {
			t.Fatalf("not sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/ontology/birthPlace"), "birthPlace"},
		{NewIRI("http://example.org/ns#Paris"), "Paris"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("plain"), "plain"},
	}
	for _, c := range cases {
		if got := c.term.LocalName(); got != c.want {
			t.Errorf("LocalName(%v) = %q want %q", c.term, got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{NewIRI("a"), NewIRI("b"), NewLiteral("a"), NewBlank("a")}
	for _, a := range terms {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(%v,%v) != 0", a, a)
		}
		for _, b := range terms {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("antisymmetry violated for %v %v", a, b)
			}
		}
	}
}

func TestReaderLargeLiteral(t *testing.T) {
	long := strings.Repeat("x", 100_000)
	in := "<http://e/s> <http://e/p> \"" + long + "\" .\n"
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].O.Value != long {
		t.Fatal("large literal mangled")
	}
}

// TestParserNeverPanics feeds random garbage to the N-Triples parser; it
// must reject or accept but never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte(`<>"\_:@^. aZ0#策`)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(60)
		line := make([]byte, n)
		for j := range line {
			line[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", line, r)
				}
			}()
			ParseTripleLine(string(line))
		}()
	}
}

// TestParserRoundTripFuzz: any triple the writer produces must parse back
// identically, for randomized term content including escapes and unicode.
func TestParserRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	pieces := []string{"plain", "with space", `with"quote`, `back\slash`, "tab\there",
		"new\nline", "uni– ché", "123", ""}
	randTerm := func(allowLiteral bool) Term {
		switch k := rng.Intn(3); {
		case k == 0 || !allowLiteral && k == 1:
			return NewIRI("http://e/x" + pieces[rng.Intn(4)][:2] + "y")
		case k == 1:
			return NewLiteral(pieces[rng.Intn(len(pieces))])
		default:
			return NewBlank("b" + pieces[7][:2])
		}
	}
	for i := 0; i < 2000; i++ {
		tr := Triple{S: randTerm(false), P: NewIRI("http://e/p"), O: randTerm(true)}
		got, ok, err := ParseTripleLine(tr.String())
		if err != nil || !ok {
			t.Fatalf("round trip failed for %q: %v", tr.String(), err)
		}
		if got != tr {
			t.Fatalf("round trip changed triple:\n in %#v\nout %#v", tr, got)
		}
	}
}
