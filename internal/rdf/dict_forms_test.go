package rdf

// Direct unit coverage of the dictionary's four physical forms (builder,
// frozen, lazy, extended) and the borrowed-read ingestion path. The KB
// builders exercise all of this indirectly, but the invariants — shared ID
// space, inverse permutations, read-only panics, borrow-until-next-read —
// deserve in-package pinning.

import (
	"slices"
	"strings"
	"testing"
)

// sliceLazyTerms adapts a term-ascending slice to the LazyTerms interface.
type sliceLazyTerms []Term

func (s sliceLazyTerms) Len() int                 { return len(s) }
func (s sliceLazyTerms) TermAtRank(rank int) Term { return s[rank] }
func (s sliceLazyTerms) RankOf(t Term) (int, bool) {
	for i, u := range s {
		if u == t {
			return i, true
		}
	}
	return 0, false
}
func (s sliceLazyTerms) EachTerm(f func(rank int, t Term) bool) {
	for i, t := range s {
		if !f(i, t) {
			return
		}
	}
}

// buildDictForms returns the same three-term dictionary in every read form:
// insertion order C, A, B (IDs 1..3), ascending term order A, B, C.
func buildDictForms(t *testing.T) (builder, frozen, lazy *Dictionary) {
	t.Helper()
	builder = NewDictionary()
	for _, v := range []string{"http://e/C", "http://e/A", "http://e/B"} {
		builder.Encode(NewIRI(v))
	}
	terms := slices.Clone(builder.Terms())
	sorted := builder.SortedByTerm() // A=2, B=3, C=1
	var err error
	frozen, err = NewFrozenDictionary(terms, sorted)
	if err != nil {
		t.Fatal(err)
	}
	asc := make(sliceLazyTerms, len(sorted))
	rank := make([]uint32, len(sorted))
	for r, id := range sorted {
		asc[r] = terms[id-1]
		rank[id-1] = uint32(r)
	}
	lazy, err = NewLazyDictionary(asc, slices.Clone(sorted), rank)
	if err != nil {
		t.Fatal(err)
	}
	return builder, frozen, lazy
}

func TestDictionaryFormsAgree(t *testing.T) {
	builder, frozen, lazy := buildDictForms(t)
	forms := map[string]*Dictionary{"builder": builder, "frozen": frozen, "lazy": lazy}
	for name, d := range forms {
		if d.Len() != 3 {
			t.Fatalf("%s: Len = %d, want 3", name, d.Len())
		}
		for id, v := range map[ID]string{1: "http://e/C", 2: "http://e/A", 3: "http://e/B"} {
			if got := d.Decode(id); got != NewIRI(v) {
				t.Fatalf("%s: Decode(%d) = %v, want %s", name, id, got, v)
			}
			if gotID, ok := d.Lookup(NewIRI(v)); !ok || gotID != id {
				t.Fatalf("%s: Lookup(%s) = %d,%v, want %d", name, v, gotID, ok, id)
			}
		}
		if _, ok := d.Lookup(NewIRI("http://e/missing")); ok {
			t.Fatalf("%s: Lookup of a missing term succeeded", name)
		}
		if got, want := d.SortedByTerm(), []ID{2, 3, 1}; !slices.Equal(got, want) {
			t.Fatalf("%s: SortedByTerm = %v, want %v", name, got, want)
		}
		if got := d.Terms(); len(got) != 3 || got[0] != NewIRI("http://e/C") || got[2] != NewIRI("http://e/B") {
			t.Fatalf("%s: Terms = %v", name, got)
		}
		seen := map[ID]Term{}
		d.EachTerm(func(id ID, term Term) bool {
			seen[id] = term
			return true
		})
		if len(seen) != 3 || seen[2] != NewIRI("http://e/A") {
			t.Fatalf("%s: EachTerm visited %v", name, seen)
		}
		calls := 0
		d.EachTerm(func(ID, Term) bool { calls++; return false })
		if calls != 1 {
			t.Fatalf("%s: EachTerm ignored early stop (%d calls)", name, calls)
		}
	}

	// Read-only forms must reject Encode loudly.
	for _, name := range []string{"frozen", "lazy"} {
		d := forms[name]
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Encode on a read-only dictionary did not panic", name)
				}
			}()
			d.Encode(NewIRI("http://e/new"))
		}()
	}
}

func TestDictionaryValidationRejectsBadPermutations(t *testing.T) {
	terms := []Term{NewIRI("http://e/C"), NewIRI("http://e/A"), NewIRI("http://e/B")}
	if _, err := NewFrozenDictionary(terms, []ID{2, 3}); err == nil {
		t.Fatal("frozen: length mismatch accepted")
	}
	if _, err := NewFrozenDictionary(terms, []ID{2, 3, 9}); err == nil {
		t.Fatal("frozen: out-of-range id accepted")
	}
	if _, err := NewFrozenDictionary(terms, []ID{1, 3, 2}); err == nil {
		t.Fatal("frozen: non-ascending permutation accepted")
	}
	asc := sliceLazyTerms{NewIRI("http://e/A"), NewIRI("http://e/B"), NewIRI("http://e/C")}
	if _, err := NewLazyDictionary(asc, []ID{2, 3, 1}, []uint32{1, 0}); err == nil {
		t.Fatal("lazy: length mismatch accepted")
	}
	if _, err := NewLazyDictionary(asc, []ID{2, 3, 0}, []uint32{2, 0, 1}); err == nil {
		t.Fatal("lazy: NoID in permutation accepted")
	}
	if _, err := NewLazyDictionary(asc, []ID{2, 3, 1}, []uint32{0, 1, 2}); err == nil {
		t.Fatal("lazy: non-inverse rank table accepted")
	}
}

func TestExtendDictionaryOverEveryBaseForm(t *testing.T) {
	builder, frozen, lazy := buildDictForms(t)
	for name, base := range map[string]*Dictionary{"builder": builder, "frozen": frozen, "lazy": lazy} {
		ext, err := ExtendDictionary(base, []Term{NewIRI("http://e/D"), NewBlank("tail")})
		if err != nil {
			t.Fatalf("%s: extend: %v", name, err)
		}
		if ext.Len() != 5 {
			t.Fatalf("%s: extended Len = %d, want 5", name, ext.Len())
		}
		// Base ids keep resolving; tail ids follow on.
		if id, ok := ext.Lookup(NewIRI("http://e/A")); !ok || id != 2 {
			t.Fatalf("%s: base term lost in extension: %d,%v", name, id, ok)
		}
		if id, ok := ext.Lookup(NewBlank("tail")); !ok || id != 5 {
			t.Fatalf("%s: tail term at %d,%v, want id 5", name, id, ok)
		}
		if got := ext.Decode(4); got != NewIRI("http://e/D") {
			t.Fatalf("%s: Decode(4) = %v", name, got)
		}
		if got := ext.Decode(1); got != NewIRI("http://e/C") {
			t.Fatalf("%s: Decode(1) = %v", name, got)
		}
		if got := ext.Terms(); len(got) != 5 || got[3] != NewIRI("http://e/D") {
			t.Fatalf("%s: extended Terms = %v", name, got)
		}
		// SortedByTerm must interleave the tail into the base order:
		// IRIs A,B,C,D then the blank node (IRI < Literal < Blank).
		if got, want := ext.SortedByTerm(), []ID{2, 3, 1, 4, 5}; !slices.Equal(got, want) {
			t.Fatalf("%s: extended SortedByTerm = %v, want %v", name, got, want)
		}
		count := 0
		ext.EachTerm(func(ID, Term) bool { count++; return true })
		if count != 5 {
			t.Fatalf("%s: extended EachTerm visited %d terms", name, count)
		}
		stopped := 0
		ext.EachTerm(func(ID, Term) bool { stopped++; return false })
		if stopped != 1 {
			t.Fatalf("%s: extended EachTerm ignored early stop", name)
		}
	}
	if _, err := ExtendDictionary(builder, []Term{NewIRI("http://e/A")}); err == nil {
		t.Fatal("extending with a term already in base must fail")
	}
	if _, err := ExtendDictionary(builder, []Term{NewIRI("http://e/X"), NewIRI("http://e/X")}); err == nil {
		t.Fatal("extending with a duplicate tail term must fail")
	}
}

func TestEncodeDecodeTripleRoundTrip(t *testing.T) {
	d := NewDictionary()
	tr := NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral("v"))
	enc := d.EncodeTriple(tr)
	if enc.S == NoID || enc.P == NoID || enc.O == NoID {
		t.Fatalf("EncodeTriple handed out NoID: %+v", enc)
	}
	if got := d.DecodeTriple(enc); got != tr {
		t.Fatalf("DecodeTriple = %v, want %v", got, tr)
	}
}

func TestTermKindPredicates(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Fatalf("Kind names: %s %s %s", IRI, Literal, Blank)
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind renders as %q", got)
	}
	if !NewIRI("x").IsEntity() || !NewBlank("b").IsEntity() || NewLiteral("l").IsEntity() {
		t.Fatal("IsEntity: IRIs and blanks are entities, literals are not")
	}
	if NewIRI("a").Compare(NewLiteral("a")) >= 0 || NewLiteral("a").Compare(NewBlank("a")) >= 0 {
		t.Fatal("kind order must be IRI < Literal < Blank")
	}
	if NewIRI("a").Compare(NewIRI("b")) >= 0 || NewIRI("b").Compare(NewIRI("b")) != 0 {
		t.Fatal("same-kind terms order by value")
	}
	a := NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("o"))
	b := NewTriple(NewIRI("b"), NewIRI("p"), NewIRI("o"))
	if a.Compare(b) >= 0 || a.Compare(a) != 0 {
		t.Fatal("triples order by (S,P,O)")
	}
}

// TestIRIEscapeRoundTrip drives escapeIRI through Term.String: every byte
// the IRIREF grammar forbids raw must serialize as a numeric escape and
// parse back to the identical term.
func TestIRIEscapeRoundTrip(t *testing.T) {
	for _, v := range []string{
		"http://e/with space", "http://e/a<b>c", "http://e/q\"uote",
		"http://e/br{a}ce", "http://e/p|pe", "http://e/car^et",
		"http://e/tick`", "http://e/tab\tchar", "http://e/slash\\x",
	} {
		term := NewIRI(v)
		s := term.String()
		if strings.ContainsAny(s[1:len(s)-1], " <\"{}|^`\t") && !strings.Contains(s, "u00") {
			t.Fatalf("IRI %q serialized without escaping: %q", v, s)
		}
		got, err := ParseTerm(s)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s, v, err)
		}
		if got != term {
			t.Fatalf("IRI round trip changed %q → %q", v, got.Value)
		}
	}
}

// TestReadBorrowed pins the borrowed-read contract: same triples as Read,
// comments and blank lines skipped, and values valid until the next call
// (so an immediate copy must round-trip).
func TestReadBorrowed(t *testing.T) {
	doc := "# comment\n" +
		"<http://e/s1> <http://e/p> <http://e/o1> .\n" +
		"\n" +
		"<http://e/s2> <http://e/p> \"lit with spaces\" .\n" +
		"<http://e/s3> <http://e/p> \"esc\\taped\" .\n"
	want, err := ReadAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(doc))
	var got []Triple
	for {
		tr, err := r.ReadBorrowed()
		if err != nil {
			break
		}
		// Copy before the next call, per the borrow contract.
		tr.S.Value = strings.Clone(tr.S.Value)
		tr.P.Value = strings.Clone(tr.P.Value)
		tr.O.Value = strings.Clone(tr.O.Value)
		got = append(got, tr)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("ReadBorrowed = %v, want %v", got, want)
	}

	if _, err := NewReader(strings.NewReader("<http://e/s> <http://e/p> .\n")).ReadBorrowed(); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("ReadBorrowed error must carry the line number, got %v", err)
	}
}
