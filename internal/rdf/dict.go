package rdf

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// ID is a dense dictionary identifier for a term. The zero value is reserved
// as "no term".
type ID uint32

// NoID is the reserved null identifier.
const NoID ID = 0

// Dictionary maps terms to dense IDs starting at 1, in insertion order.
// A Dictionary is append-only: once an ID is handed out it never changes.
// It is safe for concurrent reads after the build phase is complete.
//
// A Dictionary comes in several physical forms with one behavior: the
// mutable builder form keeps a hash index for Encode/Lookup; the frozen form
// (NewFrozenDictionary, used by v1 KB snapshots) carries no map at all —
// Lookup binary-searches a precomputed term-order permutation, so reopening
// a snapshot never pays a per-term hashing pass; the lazy form
// (NewLazyDictionary, used by v2 KB snapshots) holds no term slice either —
// terms are decoded on demand from a LazyTerms source (e.g. front-coded
// blocks in an mmap'd snapshot), so opening is O(page-in) in the term table.
// Finally, ExtendDictionary layers a small set of appended terms over any of
// the other forms without copying their lookup structures: the live-KB delta
// layer uses it to add entities without rebuilding a multi-million-term
// index.
type Dictionary struct {
	terms []Term      // terms[i] has ID i+1; nil in the lazy and extended forms
	index map[Term]ID // term -> ID; only the builder form carries it
	// sorted holds the IDs permuted into ascending Term.Compare order; the
	// frozen and lazy forms carry it (Lookup's binary-search index).
	sorted []ID
	// lazy/rank form the lazy view: terms are decoded on demand from the
	// source, and rank[i] is the term-order rank of ID i+1 (the inverse of
	// sorted), so Decode is one block decode instead of a table load.
	lazy LazyTerms
	rank []uint32
	// base/extra/extraTerms form the extended view: extraTerms is the
	// appended tail (ids base.Len()+1, ...), extra indexes only the tail,
	// and everything else falls back to base.
	base       *Dictionary
	extra      map[Term]ID
	extraTerms []Term
}

// LazyTerms is a random-access source of terms in ascending Term.Compare
// order, used by the lazy dictionary form. Implementations decode terms on
// demand (e.g. from front-coded blocks) instead of holding a materialized
// []Term.
type LazyTerms interface {
	// Len returns the number of terms.
	Len() int
	// TermAtRank returns the term at position rank (0-based) of the
	// ascending term order.
	TermAtRank(rank int) Term
	// RankOf returns the rank at which t is stored, if present.
	RankOf(t Term) (int, bool)
	// EachTerm calls f for every rank in ascending order until f returns
	// false. Sequential decoding is expected to be much cheaper than n
	// independent TermAtRank calls.
	EachTerm(f func(rank int, t Term) bool)
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[Term]ID)}
}

// Len returns the number of terms in the dictionary.
func (d *Dictionary) Len() int {
	switch {
	case d.lazy != nil:
		return d.lazy.Len()
	case d.base != nil:
		return d.base.Len() + len(d.extraTerms)
	}
	return len(d.terms)
}

// Encode returns the ID for t, inserting it if absent. Only the builder form
// is mutable; encoding against a frozen, lazy or extended dictionary is a
// programming error and panics.
func (d *Dictionary) Encode(t Term) ID {
	if d.index == nil {
		panic("rdf: Encode on a read-only dictionary")
	}
	if id, ok := d.index[t]; ok {
		return id
	}
	// Stored terms are usually substrings of a parsed input line; cloning
	// on insert keeps the dictionary from pinning every source line a
	// unique term appeared on (a line is ~10x the term that outlives it).
	t.Value = strings.Clone(t.Value)
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.index[t] = id
	return id
}

// Lookup returns the ID for t without inserting; ok is false if absent.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	if d.extra != nil {
		if id, ok := d.extra[t]; ok {
			return id, true
		}
		return d.base.Lookup(t)
	}
	if d.index != nil {
		id, ok := d.index[t]
		return id, ok
	}
	if d.lazy != nil {
		r, ok := d.lazy.RankOf(t)
		if !ok {
			return NoID, false
		}
		return d.sorted[r], true
	}
	// Frozen form: binary search the term-order permutation. Compare is a
	// total order consistent with equality, so the probe is exact.
	lo, hi := 0, len(d.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.terms[d.sorted[mid]-1].Compare(t) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.sorted) && d.terms[d.sorted[lo]-1] == t {
		return d.sorted[lo], true
	}
	return NoID, false
}

// NewFrozenDictionary builds the immutable lookup form from a term table
// (ordered by ID) and the permutation of IDs in ascending Term.Compare
// order, as stored in a KB snapshot. The permutation is validated to be
// in-range and strictly term-ascending (which also forces it to be
// duplicate-free, both in ids and in term values): a malformed permutation
// would not crash but would make binary-search lookups silently miss
// existing terms, so it is rejected here at open time instead. The slices
// are retained, not copied.
func NewFrozenDictionary(terms []Term, sorted []ID) (*Dictionary, error) {
	if len(terms) != len(sorted) {
		return nil, fmt.Errorf("rdf: frozen dictionary has %d terms but %d sorted ids", len(terms), len(sorted))
	}
	for i, id := range sorted {
		if id == NoID || int(id) > len(terms) {
			return nil, fmt.Errorf("rdf: frozen dictionary sorted id %d out of range at %d", id, i)
		}
		if i > 0 && terms[sorted[i-1]-1].Compare(terms[id-1]) >= 0 {
			return nil, fmt.Errorf("rdf: frozen dictionary permutation not strictly term-ascending at %d", i)
		}
	}
	return &Dictionary{terms: terms, sorted: sorted}, nil
}

// NewLazyDictionary builds the on-demand lookup form from a LazyTerms source
// (terms in ascending Term.Compare order), the permutation of IDs in that
// order, and its inverse (rank[i] is the rank of ID i+1). No term slice is
// materialized — Decode delegates to the source — so opening a snapshot-backed
// dictionary allocates nothing proportional to the term count beyond what the
// caller already mapped. The permutation pair is validated to be mutually
// inverse (which forces both to be valid permutations): a mismatch would not
// crash but would silently decode or look up the wrong terms, so it is
// rejected here at open time. The slices are retained, not copied.
func NewLazyDictionary(lazy LazyTerms, sorted []ID, rank []uint32) (*Dictionary, error) {
	n := lazy.Len()
	if len(sorted) != n || len(rank) != n {
		return nil, fmt.Errorf("rdf: lazy dictionary has %d terms but %d sorted ids and %d ranks", n, len(sorted), len(rank))
	}
	for r, id := range sorted {
		if id == NoID || int(id) > n {
			return nil, fmt.Errorf("rdf: lazy dictionary sorted id %d out of range at %d", id, r)
		}
		if int(rank[id-1]) != r {
			return nil, fmt.Errorf("rdf: lazy dictionary rank[%d] = %d, want %d (not the inverse permutation)", id-1, rank[id-1], r)
		}
	}
	return &Dictionary{lazy: lazy, sorted: sorted, rank: rank}, nil
}

// ExtendDictionary returns a read-only dictionary holding every term of
// base plus extra terms appended in order (ids base.Len()+1, ...). The
// base's lookup structure — hash map or frozen binary-search permutation —
// is reused, not copied; only the appended tail gets its own small index,
// so extending a multi-million-term dictionary by a handful of terms is
// O(len(extra)). Encode on the result panics (it is a view, not a
// builder), and base must not grow afterwards: the view's id space starts
// where base's ended. Extra terms already present in base (or repeated)
// are rejected.
func ExtendDictionary(base *Dictionary, extra []Term) (*Dictionary, error) {
	idx := make(map[Term]ID, len(extra))
	tail := make([]Term, 0, len(extra))
	for _, t := range extra {
		if _, ok := base.Lookup(t); ok {
			return nil, fmt.Errorf("rdf: extend: term %s already in base dictionary", t)
		}
		if _, ok := idx[t]; ok {
			return nil, fmt.Errorf("rdf: extend: duplicate term %s", t)
		}
		tail = append(tail, t)
		idx[t] = ID(base.Len() + len(tail))
	}
	return &Dictionary{base: base, extra: idx, extraTerms: tail}, nil
}

// SortedByTerm returns the IDs permuted into ascending Term.Compare order —
// the binary-search index a snapshot writer persists so that reopening needs
// no hashing pass at all. A frozen dictionary already carries the
// permutation, so re-packing a snapshot-loaded KB skips the sort.
func (d *Dictionary) SortedByTerm() []ID {
	if d.sorted != nil && d.base == nil {
		return slices.Clone(d.sorted)
	}
	if d.base != nil {
		// Extended form: merge the base's term order with the sorted tail.
		// The tail is tiny relative to the base, so a linear merge beats
		// re-sorting the whole id space — and the base side needs at most
		// one Decode per merge step (which matters when the base is lazy).
		bs := d.base.SortedByTerm()
		tail := make([]ID, len(d.extraTerms))
		for i := range tail {
			tail[i] = ID(d.base.Len() + i + 1)
		}
		sort.Slice(tail, func(i, j int) bool {
			return d.extraTerms[tail[i]-ID(d.base.Len())-1].Compare(d.extraTerms[tail[j]-ID(d.base.Len())-1]) < 0
		})
		out := make([]ID, 0, len(bs)+len(tail))
		bi, ti := 0, 0
		var bTerm Term
		bValid := false
		for bi < len(bs) && ti < len(tail) {
			if !bValid {
				bTerm = d.base.Decode(bs[bi])
				bValid = true
			}
			if bTerm.Compare(d.extraTerms[tail[ti]-ID(d.base.Len())-1]) <= 0 {
				out = append(out, bs[bi])
				bi++
				bValid = false
			} else {
				out = append(out, tail[ti])
				ti++
			}
		}
		out = append(out, bs[bi:]...)
		out = append(out, tail[ti:]...)
		return out
	}
	out := make([]ID, len(d.terms))
	for i := range out {
		out[i] = ID(i + 1)
	}
	sort.Slice(out, func(i, j int) bool {
		return d.terms[out[i]-1].Compare(d.terms[out[j]-1]) < 0
	})
	return out
}

// Decode returns the term for id. It panics on out-of-range IDs, which
// indicate a programming error rather than bad data.
func (d *Dictionary) Decode(id ID) Term {
	if id == NoID || int(id) > d.Len() {
		panic(fmt.Sprintf("rdf: dictionary decode of invalid id %d (size %d)", id, d.Len()))
	}
	switch {
	case d.lazy != nil:
		return d.lazy.TermAtRank(int(d.rank[id-1]))
	case d.base != nil:
		if n := d.base.Len(); int(id) > n {
			return d.extraTerms[int(id)-n-1]
		}
		return d.base.Decode(id)
	}
	return d.terms[id-1]
}

// Terms returns the terms ordered by ID. For the builder and frozen forms
// this is the backing slice and callers must not modify it; the lazy and
// extended forms materialize a fresh O(n) slice per call, so iterate with
// EachTerm instead when the order does not matter.
func (d *Dictionary) Terms() []Term {
	switch {
	case d.lazy != nil:
		out := make([]Term, d.lazy.Len())
		d.lazy.EachTerm(func(r int, t Term) bool {
			out[d.sorted[r]-1] = t
			return true
		})
		return out
	case d.base != nil:
		out := make([]Term, 0, d.Len())
		out = append(out, d.base.Terms()...)
		return append(out, d.extraTerms...)
	}
	return d.terms
}

// EachTerm calls f with every (id, term) pair in unspecified order until f
// returns false. Unlike Terms it allocates nothing proportional to the
// dictionary size, decoding lazy forms one block at a time.
func (d *Dictionary) EachTerm(f func(id ID, t Term) bool) {
	switch {
	case d.lazy != nil:
		d.lazy.EachTerm(func(r int, t Term) bool {
			return f(d.sorted[r], t)
		})
	case d.base != nil:
		stopped := false
		d.base.EachTerm(func(id ID, t Term) bool {
			if !f(id, t) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		for i, t := range d.extraTerms {
			if !f(ID(d.base.Len()+i+1), t) {
				return
			}
		}
	default:
		for i, t := range d.terms {
			if !f(ID(i+1), t) {
				return
			}
		}
	}
}

// IDTriple is a triple encoded against a Dictionary: subject and object use
// the term ID space and P uses the same space (predicates are terms too).
type IDTriple struct {
	S, P, O ID
}

// EncodeTriple encodes the terms of tr.
func (d *Dictionary) EncodeTriple(tr Triple) IDTriple {
	return IDTriple{S: d.Encode(tr.S), P: d.Encode(tr.P), O: d.Encode(tr.O)}
}

// DecodeTriple reverses EncodeTriple.
func (d *Dictionary) DecodeTriple(tr IDTriple) Triple {
	return Triple{S: d.Decode(tr.S), P: d.Decode(tr.P), O: d.Decode(tr.O)}
}

// SortTriples sorts ID triples in (S,P,O) order, the canonical HDT order.
func SortTriples(ts []IDTriple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

// DedupTriples sorts and removes duplicate ID triples in place, returning the
// deduplicated slice.
func DedupTriples(ts []IDTriple) []IDTriple {
	if len(ts) == 0 {
		return ts
	}
	SortTriples(ts)
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}
