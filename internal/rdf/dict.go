package rdf

import (
	"fmt"
	"sort"
)

// ID is a dense dictionary identifier for a term. The zero value is reserved
// as "no term".
type ID uint32

// NoID is the reserved null identifier.
const NoID ID = 0

// Dictionary maps terms to dense IDs starting at 1, in insertion order.
// A Dictionary is append-only: once an ID is handed out it never changes.
// It is safe for concurrent reads after the build phase is complete.
type Dictionary struct {
	terms []Term      // terms[i] has ID i+1
	index map[Term]ID // term -> ID
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[Term]ID)}
}

// Len returns the number of terms in the dictionary.
func (d *Dictionary) Len() int { return len(d.terms) }

// Encode returns the ID for t, inserting it if absent.
func (d *Dictionary) Encode(t Term) ID {
	if id, ok := d.index[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.index[t] = id
	return id
}

// Lookup returns the ID for t without inserting; ok is false if absent.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	id, ok := d.index[t]
	return id, ok
}

// Decode returns the term for id. It panics on out-of-range IDs, which
// indicate a programming error rather than bad data.
func (d *Dictionary) Decode(id ID) Term {
	if id == NoID || int(id) > len(d.terms) {
		panic(fmt.Sprintf("rdf: dictionary decode of invalid id %d (size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Terms returns the backing term slice ordered by ID. Callers must not
// modify it.
func (d *Dictionary) Terms() []Term { return d.terms }

// IDTriple is a triple encoded against a Dictionary: subject and object use
// the term ID space and P uses the same space (predicates are terms too).
type IDTriple struct {
	S, P, O ID
}

// EncodeTriple encodes the terms of tr.
func (d *Dictionary) EncodeTriple(tr Triple) IDTriple {
	return IDTriple{S: d.Encode(tr.S), P: d.Encode(tr.P), O: d.Encode(tr.O)}
}

// DecodeTriple reverses EncodeTriple.
func (d *Dictionary) DecodeTriple(tr IDTriple) Triple {
	return Triple{S: d.Decode(tr.S), P: d.Decode(tr.P), O: d.Decode(tr.O)}
}

// SortTriples sorts ID triples in (S,P,O) order, the canonical HDT order.
func SortTriples(ts []IDTriple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

// DedupTriples sorts and removes duplicate ID triples in place, returning the
// deduplicated slice.
func DedupTriples(ts []IDTriple) []IDTriple {
	if len(ts) == 0 {
		return ts
	}
	SortTriples(ts)
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}
