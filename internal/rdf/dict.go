package rdf

import (
	"fmt"
	"slices"
	"sort"
)

// ID is a dense dictionary identifier for a term. The zero value is reserved
// as "no term".
type ID uint32

// NoID is the reserved null identifier.
const NoID ID = 0

// Dictionary maps terms to dense IDs starting at 1, in insertion order.
// A Dictionary is append-only: once an ID is handed out it never changes.
// It is safe for concurrent reads after the build phase is complete.
//
// A Dictionary comes in two physical forms with one behavior: the mutable
// builder form keeps a hash index for Encode/Lookup, while the frozen form
// (NewFrozenDictionary, used by KB snapshots) carries no map at all — Lookup
// binary-searches a precomputed term-order permutation, so reopening a
// snapshot never pays a per-term hashing pass.
// A third form, ExtendDictionary, layers a small set of appended terms
// over either of the first two without copying their lookup structures:
// the live-KB delta layer uses it to add entities without rebuilding a
// multi-million-term index.
type Dictionary struct {
	terms []Term      // terms[i] has ID i+1
	index map[Term]ID // term -> ID; nil in the frozen and extended forms
	// sorted holds the IDs permuted into ascending Term.Compare order; only
	// the frozen form carries it (Lookup's binary-search index).
	sorted []ID
	// base/extra form the extended view: terms is base's table plus the
	// appended tail, extra indexes only the tail, and Lookup falls back to
	// base for everything else.
	base  *Dictionary
	extra map[Term]ID
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[Term]ID)}
}

// Len returns the number of terms in the dictionary.
func (d *Dictionary) Len() int { return len(d.terms) }

// Encode returns the ID for t, inserting it if absent. Frozen dictionaries
// are immutable by construction; encoding against one is a programming
// error and panics.
func (d *Dictionary) Encode(t Term) ID {
	if d.index == nil {
		panic("rdf: Encode on a frozen dictionary")
	}
	if id, ok := d.index[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.index[t] = id
	return id
}

// Lookup returns the ID for t without inserting; ok is false if absent.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	if d.extra != nil {
		if id, ok := d.extra[t]; ok {
			return id, true
		}
		return d.base.Lookup(t)
	}
	if d.index != nil {
		id, ok := d.index[t]
		return id, ok
	}
	// Frozen form: binary search the term-order permutation. Compare is a
	// total order consistent with equality, so the probe is exact.
	lo, hi := 0, len(d.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.terms[d.sorted[mid]-1].Compare(t) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.sorted) && d.terms[d.sorted[lo]-1] == t {
		return d.sorted[lo], true
	}
	return NoID, false
}

// NewFrozenDictionary builds the immutable lookup form from a term table
// (ordered by ID) and the permutation of IDs in ascending Term.Compare
// order, as stored in a KB snapshot. The permutation is validated to be
// in-range and strictly term-ascending (which also forces it to be
// duplicate-free, both in ids and in term values): a malformed permutation
// would not crash but would make binary-search lookups silently miss
// existing terms, so it is rejected here at open time instead. The slices
// are retained, not copied.
func NewFrozenDictionary(terms []Term, sorted []ID) (*Dictionary, error) {
	if len(terms) != len(sorted) {
		return nil, fmt.Errorf("rdf: frozen dictionary has %d terms but %d sorted ids", len(terms), len(sorted))
	}
	for i, id := range sorted {
		if id == NoID || int(id) > len(terms) {
			return nil, fmt.Errorf("rdf: frozen dictionary sorted id %d out of range at %d", id, i)
		}
		if i > 0 && terms[sorted[i-1]-1].Compare(terms[id-1]) >= 0 {
			return nil, fmt.Errorf("rdf: frozen dictionary permutation not strictly term-ascending at %d", i)
		}
	}
	return &Dictionary{terms: terms, sorted: sorted}, nil
}

// ExtendDictionary returns a read-only dictionary holding every term of
// base plus extra terms appended in order (ids base.Len()+1, ...). The
// base's lookup structure — hash map or frozen binary-search permutation —
// is reused, not copied; only the appended tail gets its own small index,
// so extending a multi-million-term dictionary by a handful of terms is
// O(len(extra)). Encode on the result panics (it is a view, not a
// builder), and base must not grow afterwards: the view's id space starts
// where base's ended. Extra terms already present in base (or repeated)
// are rejected.
func ExtendDictionary(base *Dictionary, extra []Term) (*Dictionary, error) {
	terms := make([]Term, base.Len(), base.Len()+len(extra))
	copy(terms, base.Terms())
	idx := make(map[Term]ID, len(extra))
	for _, t := range extra {
		if _, ok := base.Lookup(t); ok {
			return nil, fmt.Errorf("rdf: extend: term %s already in base dictionary", t)
		}
		if _, ok := idx[t]; ok {
			return nil, fmt.Errorf("rdf: extend: duplicate term %s", t)
		}
		terms = append(terms, t)
		idx[t] = ID(len(terms))
	}
	return &Dictionary{terms: terms, base: base, extra: idx}, nil
}

// SortedByTerm returns the IDs permuted into ascending Term.Compare order —
// the binary-search index a snapshot writer persists so that reopening needs
// no hashing pass at all. A frozen dictionary already carries the
// permutation, so re-packing a snapshot-loaded KB skips the sort.
func (d *Dictionary) SortedByTerm() []ID {
	if d.sorted != nil {
		return slices.Clone(d.sorted)
	}
	out := make([]ID, len(d.terms))
	for i := range out {
		out[i] = ID(i + 1)
	}
	sort.Slice(out, func(i, j int) bool {
		return d.terms[out[i]-1].Compare(d.terms[out[j]-1]) < 0
	})
	return out
}

// Decode returns the term for id. It panics on out-of-range IDs, which
// indicate a programming error rather than bad data.
func (d *Dictionary) Decode(id ID) Term {
	if id == NoID || int(id) > len(d.terms) {
		panic(fmt.Sprintf("rdf: dictionary decode of invalid id %d (size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Terms returns the backing term slice ordered by ID. Callers must not
// modify it.
func (d *Dictionary) Terms() []Term { return d.terms }

// IDTriple is a triple encoded against a Dictionary: subject and object use
// the term ID space and P uses the same space (predicates are terms too).
type IDTriple struct {
	S, P, O ID
}

// EncodeTriple encodes the terms of tr.
func (d *Dictionary) EncodeTriple(tr Triple) IDTriple {
	return IDTriple{S: d.Encode(tr.S), P: d.Encode(tr.P), O: d.Encode(tr.O)}
}

// DecodeTriple reverses EncodeTriple.
func (d *Dictionary) DecodeTriple(tr IDTriple) Triple {
	return Triple{S: d.Decode(tr.S), P: d.Decode(tr.P), O: d.Decode(tr.O)}
}

// SortTriples sorts ID triples in (S,P,O) order, the canonical HDT order.
func SortTriples(ts []IDTriple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
}

// DedupTriples sorts and removes duplicate ID triples in place, returning the
// deduplicated slice.
func DedupTriples(ts []IDTriple) []IDTriple {
	if len(ts) == 0 {
		return ts
	}
	SortTriples(ts)
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}
