// Package rdf implements the RDF data model used throughout REMI: terms
// (IRIs, literals, blank nodes), triples, a streaming N-Triples reader and
// writer, and a dictionary that maps terms to dense integer identifiers.
//
// The package follows the formulation of Section 2.1 of the paper: a KB K is
// a set of triples p(s,o) with p ∈ P, s ∈ I∪B and o ∈ I∪L∪B, where I are
// entities, P predicates, L literals and B blank nodes.
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the three syntactic categories of RDF terms.
type Kind uint8

const (
	// IRI identifies a named resource, e.g. <http://dbpedia.org/resource/Paris>.
	IRI Kind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is an anonymous node, e.g. _:b42.
	Blank
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Value holds the IRI string (without angle
// brackets), the literal lexical form (with datatype/language suffix kept
// verbatim, e.g. `42"^^<http://www.w3.org/2001/XMLSchema#integer>`), or the
// blank node label (without the _: prefix).
type Term struct {
	Kind  Kind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewBlank returns a blank-node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsEntity reports whether the term can appear in the entity set I∪B,
// i.e. it is an IRI or a blank node (not a literal).
func (t Term) IsEntity() bool { return t.Kind != Literal }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + escapeIRI(t.Value) + ">"
	case Blank:
		return "_:" + t.Value
	default:
		return quoteLiteral(t.Value)
	}
}

// LocalName returns a human-oriented short name: the fragment or last path
// segment of an IRI, the label of a blank node, or the lexical form of a
// literal with any datatype suffix removed.
func (t Term) LocalName() string {
	switch t.Kind {
	case IRI:
		v := t.Value
		if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
			v = v[i+1:]
		}
		return v
	case Blank:
		return "_:" + t.Value
	default:
		v := t.Value
		if i := strings.Index(v, `"^^`); i >= 0 {
			return v[:i]
		}
		if i := strings.Index(v, `"@`); i >= 0 {
			return v[:i]
		}
		return v
	}
}

// quoteLiteral renders a literal lexical form in N-Triples syntax. The stored
// value may already carry a datatype (`lex"^^<iri>`) or language (`lex"@en`)
// suffix; in that case only the opening quote is added.
func quoteLiteral(v string) string {
	if i := strings.Index(v, `"^^`); i >= 0 {
		return `"` + escapeLiteral(v[:i]) + v[i:]
	}
	if i := strings.Index(v, `"@`); i >= 0 {
		return `"` + escapeLiteral(v[:i]) + v[i:]
	}
	return `"` + escapeLiteral(v) + `"`
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t\b\f") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Iterate bytes, not runes: every ECHAR is ASCII, and a lexical form
	// that is not valid UTF-8 must still round-trip byte-for-byte rather
	// than have stray bytes rewritten to U+FFFD.
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		case '\b':
			b.WriteString(`\b`)
		case '\f':
			b.WriteString(`\f`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeIRI renders an IRI value for <...> syntax. The IRIREF grammar
// forbids raw control characters, space and <>"{}|^`\ inside the brackets;
// they are written as \uXXXX numeric escapes (the only escapes IRIREF
// allows), so an IRI that was parsed from an escaped form round-trips.
func escapeIRI(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if iriNeedsEscape(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Byte-wise for the same reason as escapeLiteral: everything the
	// grammar escapes is ASCII, and other bytes must pass through intact.
	for i := 0; i < len(s); i++ {
		if c := s[i]; iriNeedsEscape(c) {
			fmt.Fprintf(&b, `\u%04X`, c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func iriNeedsEscape(c byte) bool {
	switch c {
	case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
		return true
	}
	return c <= 0x20
}

// Compare orders terms first by kind (IRI < Literal < Blank) and then by
// value, providing a total deterministic order.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	return strings.Compare(t.Value, u.Value)
}

// Triple is a single RDF assertion p(s,o), stored in (subject, predicate,
// object) order.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (tr Triple) String() string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String() + " ."
}

// Compare orders triples lexicographically by (S, P, O).
func (tr Triple) Compare(u Triple) int {
	if c := tr.S.Compare(u.S); c != 0 {
		return c
	}
	if c := tr.P.Compare(u.P); c != 0 {
		return c
	}
	return tr.O.Compare(u.O)
}
