package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseTerm parses a single term in N-Triples syntax: <iri>, _:label, or a
// quoted literal with optional ^^<datatype> or @lang suffix.
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, fmt.Errorf("rdf: empty term")
	}
	switch {
	case s[0] == '<':
		if !strings.HasSuffix(s, ">") {
			return Term{}, fmt.Errorf("rdf: unterminated IRI %q", s)
		}
		return NewIRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "_:"):
		return NewBlank(s[2:]), nil
	case s[0] == '"':
		return parseLiteral(s)
	default:
		return Term{}, fmt.Errorf("rdf: cannot parse term %q", s)
	}
}

func parseLiteral(s string) (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return Term{}, fmt.Errorf("rdf: unterminated literal %q", s)
	}
	lex := unescapeLiteral(s[1:end])
	rest := s[end+1:]
	switch {
	case rest == "":
		return NewLiteral(lex), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return NewLiteral(lex + `"^^` + rest[2:]), nil
	case strings.HasPrefix(rest, "@"):
		return NewLiteral(lex + `"` + rest), nil
	default:
		return Term{}, fmt.Errorf("rdf: malformed literal suffix %q", rest)
	}
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// ParseTripleLine parses one N-Triples statement. It returns ok=false for
// blank lines and comment lines starting with '#'.
func ParseTripleLine(line string) (tr Triple, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Triple{}, false, nil
	}
	line = strings.TrimSuffix(line, ".")
	line = strings.TrimSpace(line)

	fields, err := splitTerms(line)
	if err != nil {
		return Triple{}, false, err
	}
	if len(fields) != 3 {
		return Triple{}, false, fmt.Errorf("rdf: expected 3 terms, got %d in %q", len(fields), line)
	}
	s, err := ParseTerm(fields[0])
	if err != nil {
		return Triple{}, false, err
	}
	p, err := ParseTerm(fields[1])
	if err != nil {
		return Triple{}, false, err
	}
	if p.Kind != IRI {
		return Triple{}, false, fmt.Errorf("rdf: predicate must be an IRI, got %s", p)
	}
	o, err := ParseTerm(fields[2])
	if err != nil {
		return Triple{}, false, err
	}
	if s.Kind == Literal {
		return Triple{}, false, fmt.Errorf("rdf: subject cannot be a literal: %s", s)
	}
	return NewTriple(s, p, o), true, nil
}

// splitTerms splits an N-Triples statement body into its whitespace-separated
// terms, keeping quoted literals (which may contain spaces) intact.
func splitTerms(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		if line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' {
					i += 2
					if i > len(line) {
						i = len(line)
					}
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
			// consume suffix (^^<...> or @lang) until whitespace
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		} else {
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		out = append(out, line[start:i])
	}
	return out, nil
}

// Reader streams triples from an N-Triples document.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r in a streaming N-Triples reader.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		tr, ok, err := ParseTripleLine(r.sc.Text())
		if err != nil {
			return Triple{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		if ok {
			return tr, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll parses every triple in the input.
func ReadAll(r io.Reader) ([]Triple, error) {
	rd := NewReader(r)
	var out []Triple
	for {
		tr, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, tr)
	}
}

// WriteAll serializes triples in N-Triples syntax.
func WriteAll(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, tr := range triples {
		if _, err := bw.WriteString(tr.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
