package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unsafe"
)

// ParseTerm parses a single term in N-Triples syntax: <iri>, _:label, or a
// quoted literal with optional ^^<datatype> or @lang suffix.
func ParseTerm(s string) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, fmt.Errorf("rdf: empty term")
	}
	switch {
	case s[0] == '<':
		if !strings.HasSuffix(s, ">") {
			return Term{}, fmt.Errorf("rdf: unterminated IRI %q", s)
		}
		iri, err := unescapeIRI(s[1 : len(s)-1])
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case strings.HasPrefix(s, "_:"):
		return NewBlank(s[2:]), nil
	case s[0] == '"':
		return parseLiteral(s)
	default:
		return Term{}, fmt.Errorf("rdf: cannot parse term %q", s)
	}
}

func parseLiteral(s string) (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return Term{}, fmt.Errorf("rdf: unterminated literal %q", s)
	}
	lex, err := unescapeLiteral(s[1:end])
	if err != nil {
		return Term{}, err
	}
	rest := s[end+1:]
	switch {
	case rest == "":
		return NewLiteral(lex), nil
	case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
		return NewLiteral(lex + `"^^` + rest[2:]), nil
	case strings.HasPrefix(rest, "@"):
		return NewLiteral(lex + `"` + rest), nil
	default:
		return Term{}, fmt.Errorf("rdf: malformed literal suffix %q", rest)
	}
}

// unescapeLiteral decodes the escape sequences allowed inside a quoted
// literal: the ECHARs \t \b \n \r \f \" \' \\ plus the numeric UCHARs
// \uXXXX and \UXXXXXXXX. Malformed escapes are an error, never passed
// through: DBpedia and Wikidata dumps lean heavily on \u escapes, and
// silently keeping the backslash would corrupt the lexical form.
func unescapeLiteral(s string) (string, error) {
	return unescapeText(s, true, "literal")
}

// unescapeIRI decodes the escapes allowed inside <...>: the IRIREF grammar
// admits only the numeric \uXXXX / \UXXXXXXXX forms, not ECHARs.
func unescapeIRI(s string) (string, error) {
	return unescapeText(s, false, "IRI")
}

func unescapeText(s string, allowEchar bool, what string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("rdf: trailing backslash in %s", what)
		}
		e := s[i]
		if allowEchar {
			switch e {
			case 't':
				b.WriteByte('\t')
				continue
			case 'b':
				b.WriteByte('\b')
				continue
			case 'n':
				b.WriteByte('\n')
				continue
			case 'r':
				b.WriteByte('\r')
				continue
			case 'f':
				b.WriteByte('\f')
				continue
			case '"':
				b.WriteByte('"')
				continue
			case '\'':
				b.WriteByte('\'')
				continue
			case '\\':
				b.WriteByte('\\')
				continue
			}
		}
		switch e {
		case 'u', 'U':
			n := 4
			if e == 'U' {
				n = 8
			}
			if i+n >= len(s) {
				return "", fmt.Errorf("rdf: truncated \\%c escape in %s", e, what)
			}
			r := rune(0)
			for _, d := range []byte(s[i+1 : i+1+n]) {
				v := hexVal(d)
				if v < 0 {
					return "", fmt.Errorf("rdf: invalid hex digit %q in \\%c escape in %s", d, e, what)
				}
				r = r<<4 | rune(v)
			}
			if r > unicodeMaxRune || (r >= 0xD800 && r <= 0xDFFF) {
				return "", fmt.Errorf("rdf: \\%c escape U+%04X is not a Unicode scalar value in %s", e, r, what)
			}
			b.WriteRune(r)
			i += n
		default:
			return "", fmt.Errorf("rdf: unknown escape \\%c in %s", e, what)
		}
	}
	return b.String(), nil
}

const unicodeMaxRune = '\U0010FFFF'

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// ParseTripleLine parses one N-Triples statement. It returns ok=false for
// blank lines and comment lines starting with '#'.
func ParseTripleLine(line string) (tr Triple, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Triple{}, false, nil
	}
	line = strings.TrimSuffix(line, ".")
	line = strings.TrimSpace(line)

	fields, n := splitTerms(line)
	if n != 3 {
		return Triple{}, false, fmt.Errorf("rdf: expected 3 terms, got %d in %q", n, line)
	}
	s, err := ParseTerm(fields[0])
	if err != nil {
		return Triple{}, false, err
	}
	p, err := ParseTerm(fields[1])
	if err != nil {
		return Triple{}, false, err
	}
	if p.Kind != IRI {
		return Triple{}, false, fmt.Errorf("rdf: predicate must be an IRI, got %s", p)
	}
	o, err := ParseTerm(fields[2])
	if err != nil {
		return Triple{}, false, err
	}
	if s.Kind == Literal {
		return Triple{}, false, fmt.Errorf("rdf: subject cannot be a literal: %s", s)
	}
	return NewTriple(s, p, o), true, nil
}

// splitTerms splits an N-Triples statement body into its whitespace-separated
// terms, keeping quoted literals (which may contain spaces) intact. It
// returns the first three terms by value and the total count found —
// allocation-free, since the streaming ingest path calls it once per input
// line and a per-line slice was a third of the whole build's garbage.
func splitTerms(line string) (fields [3]string, n int) {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		if line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' {
					i += 2
					if i > len(line) {
						i = len(line)
					}
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
			// consume suffix (^^<...> or @lang) until whitespace
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		} else {
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
		}
		if n < 3 {
			fields[n] = line[start:i]
		}
		n++
	}
	return fields, n
}

// Reader streams triples from an N-Triples document.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r in a streaming N-Triples reader.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Read() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		tr, ok, err := ParseTripleLine(r.sc.Text())
		if err != nil {
			return Triple{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		if ok {
			return tr, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadBorrowed is Read without the per-line string allocation: escape-free
// term values alias the reader's internal buffer and are only valid until
// the next Read or ReadBorrowed call. Callers that retain a term must copy
// it (strings.Clone) first. Bulk ingestion wants this — the line strings
// are otherwise half of everything a streamed KB build allocates.
func (r *Reader) ReadBorrowed() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		b := r.sc.Bytes()
		var line string
		if len(b) > 0 {
			line = unsafe.String(&b[0], len(b))
		}
		tr, ok, err := ParseTripleLine(line)
		if err != nil {
			return Triple{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		if ok {
			return tr, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll parses every triple in the input.
func ReadAll(r io.Reader) ([]Triple, error) {
	rd := NewReader(r)
	var out []Triple
	for {
		tr, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, tr)
	}
}

// WriteAll serializes triples in N-Triples syntax.
func WriteAll(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, tr := range triples {
		if _, err := bw.WriteString(tr.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
