package rdf

import "testing"

// TestFrozenDictionaryLookup checks the binary-search lookup form against
// the mutable builder form over the same terms.
func TestFrozenDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	words := []Term{
		NewIRI("http://x/b"), NewLiteral("zeta"), NewIRI("http://x/a"),
		NewBlank("n1"), NewLiteral("alpha"), NewIRI("http://x/c"),
	}
	for _, w := range words {
		d.Encode(w)
	}
	frozen, err := NewFrozenDictionary(d.Terms(), d.SortedByTerm())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		want, _ := d.Lookup(w)
		got, ok := frozen.Lookup(w)
		if !ok || got != want {
			t.Fatalf("frozen Lookup(%v) = %d,%v, want %d", w, got, ok, want)
		}
		if frozen.Decode(got) != w {
			t.Fatalf("frozen Decode(%d) = %v, want %v", got, frozen.Decode(got), w)
		}
	}
	if _, ok := frozen.Lookup(NewIRI("http://x/absent")); ok {
		t.Fatal("frozen Lookup resolved an absent term")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Encode on a frozen dictionary must panic")
		}
	}()
	frozen.Encode(NewIRI("http://x/new"))
}

// TestFrozenDictionaryRejectsBadPermutation covers the open-time validation:
// length mismatches, out-of-range ids, duplicates and wrong order must all
// be rejected rather than yielding silently missing lookups.
func TestFrozenDictionaryRejectsBadPermutation(t *testing.T) {
	terms := []Term{NewIRI("http://x/a"), NewIRI("http://x/b"), NewIRI("http://x/c")}
	cases := map[string][]ID{
		"short":        {1, 2},
		"zero id":      {0, 1, 2},
		"out of range": {1, 2, 4},
		"duplicate":    {1, 2, 2},
		"unsorted":     {2, 1, 3},
	}
	for name, sorted := range cases {
		if _, err := NewFrozenDictionary(terms, sorted); err == nil {
			t.Errorf("%s permutation accepted", name)
		}
	}
	if _, err := NewFrozenDictionary(terms, []ID{1, 2, 3}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if _, err := NewFrozenDictionary(nil, nil); err != nil {
		t.Errorf("empty dictionary rejected: %v", err)
	}
}
