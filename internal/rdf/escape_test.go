package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// TestEscapeConformance pins the N-Triples escape grammar the DBpedia and
// Wikidata dumps rely on: ECHARs inside literals, \uXXXX / \UXXXXXXXX
// UCHARs inside both literals and IRIs, and hard errors (never silent
// pass-through) for every malformed form.
func TestEscapeConformance(t *testing.T) {
	good := []struct {
		name string
		in   string
		want Term
	}{
		{"uchar4 literal", "\"caf\\u00E9\"", NewLiteral("café")},
		{"uchar4 lowercase hex", "\"caf\\u00e9\"", NewLiteral("café")},
		{"uchar8 astral", `"\U0001F600"`, NewLiteral("😀")},
		{"uchar mixed widths", `"A\U00000042c"`, NewLiteral("ABc")},
		{"echar table", `"\t\b\n\r\f\"\'\\"`, NewLiteral("\t\b\n\r\f\"'\\")},
		{"echar and uchar mixed", `"a\tbA\nc"`, NewLiteral("a\tbA\nc")},
		{"uchar null", "\"\\u0000\"", NewLiteral("\x00")},
		{"uchar max scalar", `"\U0010FFFF"`, NewLiteral("\U0010FFFF")},
		{"iri uchar4", "<http://e/caf\\u00E9>", NewIRI("http://e/café")},
		{"iri uchar8", `<http://e/\U0001F600>`, NewIRI("http://e/😀")},
		{"no escapes fast path", `"plain"`, NewLiteral("plain")},
	}
	for _, c := range good {
		got, err := ParseTerm(c.in)
		if err != nil {
			t.Errorf("%s: ParseTerm(%q): %v", c.name, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: ParseTerm(%q) = %#v, want %#v", c.name, c.in, got, c.want)
		}
	}

	// Escaped and unescaped spellings of the same datatyped / language-tagged
	// literal must parse to the same term.
	equiv := []struct{ name, escaped, plain string }{
		{"datatype suffix", "\"\\u0031\"^^<http://www.w3.org/2001/XMLSchema#integer>", `"1"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"lang tag", "\"caf\\u00E9\"@fr", `"café"@fr`},
	}
	for _, c := range equiv {
		a, err := ParseTerm(c.escaped)
		if err != nil {
			t.Errorf("%s: ParseTerm(%q): %v", c.name, c.escaped, err)
			continue
		}
		b, err := ParseTerm(c.plain)
		if err != nil {
			t.Errorf("%s: ParseTerm(%q): %v", c.name, c.plain, err)
			continue
		}
		if a != b {
			t.Errorf("%s: %q parsed to %#v, %q to %#v", c.name, c.escaped, a, c.plain, b)
		}
	}

	bad := []struct{ name, in, errSub string }{
		{"invalid hex uchar4", `"\u00GZ"`, "invalid hex digit"},
		{"invalid hex uchar8", `"\U0001F6ZZ"`, "invalid hex digit"},
		{"truncated uchar4", `"\u00"`, `truncated \u escape`},
		{"truncated uchar8", `"\U0001F6"`, `truncated \U escape`},
		{"surrogate low", `"\uD800"`, "not a Unicode scalar value"},
		{"surrogate high", `"\uDFFF"`, "not a Unicode scalar value"},
		{"beyond max scalar", `"\U00110000"`, "not a Unicode scalar value"},
		{"unknown escape", `"\q"`, `unknown escape \q`},
		{"echar in iri", `<http://e/a\nb>`, `unknown escape \n in IRI`},
		{"trailing backslash in iri", `<http://e/\>`, "trailing backslash"},
		{"invalid hex in iri", `<http://e/\u00G9>`, "invalid hex digit"},
	}
	for _, c := range bad {
		got, err := ParseTerm(c.in)
		if err == nil {
			t.Errorf("%s: ParseTerm(%q) = %#v, want error containing %q", c.name, c.in, got, c.errSub)
			continue
		}
		if !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: ParseTerm(%q) error %q, want substring %q", c.name, c.in, err, c.errSub)
		}
	}
}

// TestEscapeConformanceTripleLine runs a few of the same escapes through the
// full statement parser, since that is the path real dump lines take.
func TestEscapeConformanceTripleLine(t *testing.T) {
	line := "<http://e/caf\\u00E9> <http://e/p> \"a\\tbA \\U0001F600\" ."
	tr, ok, err := ParseTripleLine(line)
	if err != nil || !ok {
		t.Fatalf("ParseTripleLine(%q): ok=%v err=%v", line, ok, err)
	}
	want := NewTriple(NewIRI("http://e/café"), NewIRI("http://e/p"), NewLiteral("a\tbA 😀"))
	if tr != want {
		t.Fatalf("ParseTripleLine(%q) = %#v, want %#v", line, tr, want)
	}

	if _, _, err := ParseTripleLine(`<http://e/s> <http://e/p> "\uD912" .`); err == nil {
		t.Fatal("surrogate escape in object literal must fail the whole line")
	}
}

// FuzzLiteralRoundTrip checks WriteAll ∘ ReadAll ≡ id for literal objects:
// whatever lexical form a literal holds — control characters, quotes,
// backslashes, astral unicode, even invalid UTF-8 — serializing it and
// parsing it back must return the identical term.
func FuzzLiteralRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"", "plain", "café \U0001F600", "tab\there", "new\nline\rand\f\b",
		`quote" back\slash '`, `half \u esc`, "\x00\x01\x7f", "\xff\xfe not utf8",
		strings.Repeat("périph\too", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, lex string) {
		if strings.Contains(lex, `"^^`) || strings.Contains(lex, `"@`) {
			// These byte sequences are the storage-form markers for datatype
			// and language suffixes; a bare lexical form containing them is
			// ambiguous by design.
			t.Skip()
		}
		in := []Triple{NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral(lex))}
		var buf bytes.Buffer
		if err := WriteAll(&buf, in); err != nil {
			t.Fatalf("WriteAll(%q): %v", lex, err)
		}
		out, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadAll of %q (from lex %q): %v", buf.String(), lex, err)
		}
		if len(out) != 1 || out[0] != in[0] {
			t.Fatalf("round trip changed triple:\n lex %q\n doc %q\n got %#v", lex, buf.String(), out)
		}
	})
}
