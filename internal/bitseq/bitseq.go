// Package bitseq provides succinct-style bit sequences with O(1) rank and
// near-O(1) select, plus fixed-width packed integer arrays. These are the
// building blocks of the HDT bitmap-triples encoding (internal/hdt).
package bitseq

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

const wordBits = 64

// Bits is an append-friendly bit sequence. Call Build after the last Append
// (or Set) to construct the rank directory; rank/select queries are only
// valid after Build.
type Bits struct {
	words []uint64
	n     int      // logical length in bits
	ranks []uint32 // ranks[i] = number of 1s in words[0:i], built lazily
	ones  int
}

// New returns a bit sequence with n bits, all zero.
func New(n int) *Bits {
	return &Bits{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Ones returns the number of set bits (valid after Build).
func (b *Bits) Ones() int { return b.ones }

// Append adds one bit at the end.
func (b *Bits) Append(bit bool) {
	if b.n%wordBits == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/wordBits] |= 1 << (uint(b.n) % wordBits)
	}
	b.n++
	b.ranks = nil
}

// Set sets bit i to v. i must be < Len().
func (b *Bits) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitseq: Set(%d) out of range [0,%d)", i, b.n))
	}
	mask := uint64(1) << (uint(i) % wordBits)
	if v {
		b.words[i/wordBits] |= mask
	} else {
		b.words[i/wordBits] &^= mask
	}
	b.ranks = nil
}

// Get returns bit i.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitseq: Get(%d) out of range [0,%d)", i, b.n))
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Build constructs the rank directory. It must be called before Rank1/Select1.
func (b *Bits) Build() {
	b.ranks = make([]uint32, len(b.words)+1)
	total := 0
	for i, w := range b.words {
		b.ranks[i] = uint32(total)
		total += bits.OnesCount64(w)
	}
	b.ranks[len(b.words)] = uint32(total)
	b.ones = total
}

func (b *Bits) built() {
	if b.ranks == nil {
		panic("bitseq: rank/select before Build")
	}
}

// Rank1 returns the number of 1 bits in positions [0, i). i may equal Len().
func (b *Bits) Rank1(i int) int {
	b.built()
	if i <= 0 {
		return 0
	}
	if i > b.n {
		i = b.n
	}
	w := i / wordBits
	r := int(b.ranks[w])
	if rem := uint(i % wordBits); rem != 0 {
		r += bits.OnesCount64(b.words[w] & ((1 << rem) - 1))
	}
	return r
}

// Select1 returns the position of the k-th 1 bit (k is 1-based). It panics if
// k is out of range; use Ones() to bound k.
func (b *Bits) Select1(k int) int {
	b.built()
	if k < 1 || k > b.ones {
		panic(fmt.Sprintf("bitseq: Select1(%d) out of range [1,%d]", k, b.ones))
	}
	// Binary search over the per-word cumulative ranks.
	lo, hi := 0, len(b.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(b.ranks[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	w := b.words[lo]
	need := k - int(b.ranks[lo])
	for i := 0; i < wordBits; i++ {
		if w&(1<<uint(i)) != 0 {
			need--
			if need == 0 {
				return lo*wordBits + i
			}
		}
	}
	panic("bitseq: select directory corrupt")
}

// Rank0 returns the number of 0 bits in positions [0, i).
func (b *Bits) Rank0(i int) int {
	if i > b.n {
		i = b.n
	}
	if i < 0 {
		i = 0
	}
	return i - b.Rank1(i)
}

// WriteTo serializes the bit sequence (without the rank directory, which is
// rebuilt on load).
func (b *Bits) WriteTo(w io.Writer) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(b.n))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(8)
	buf := make([]byte, 8)
	nWords := (b.n + wordBits - 1) / wordBits
	for i := 0; i < nWords; i++ {
		binary.LittleEndian.PutUint64(buf, b.words[i])
		if _, err := w.Write(buf); err != nil {
			return written, err
		}
		written += 8
	}
	return written, nil
}

// ReadBits deserializes a bit sequence written by WriteTo and builds its
// rank directory.
func ReadBits(r io.Reader) (*Bits, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(hdr[:]))
	if n < 0 {
		return nil, fmt.Errorf("bitseq: negative length")
	}
	nWords := (n + wordBits - 1) / wordBits
	b := &Bits{words: make([]uint64, nWords), n: n}
	buf := make([]byte, 8)
	for i := 0; i < nWords; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		b.words[i] = binary.LittleEndian.Uint64(buf)
	}
	b.Build()
	return b, nil
}
