package bitseq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildRandom(t *testing.T, n int, p float64, seed int64) *Bits {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := &Bits{}
	for i := 0; i < n; i++ {
		b.Append(rng.Float64() < p)
	}
	b.Build()
	return b
}

func TestRankAgainstNaive(t *testing.T) {
	b := buildRandom(t, 1000, 0.3, 7)
	naive := 0
	for i := 0; i <= b.Len(); i++ {
		if got := b.Rank1(i); got != naive {
			t.Fatalf("Rank1(%d) = %d want %d", i, got, naive)
		}
		if i < b.Len() && b.Get(i) {
			naive++
		}
	}
}

func TestSelectInverseOfRank(t *testing.T) {
	b := buildRandom(t, 2048, 0.5, 11)
	for k := 1; k <= b.Ones(); k++ {
		pos := b.Select1(k)
		if !b.Get(pos) {
			t.Fatalf("Select1(%d) = %d is not a set bit", k, pos)
		}
		if got := b.Rank1(pos + 1); got != k {
			t.Fatalf("Rank1(Select1(%d)+1) = %d", k, got)
		}
	}
}

func TestRank0(t *testing.T) {
	b := buildRandom(t, 500, 0.2, 3)
	for i := 0; i <= b.Len(); i++ {
		if b.Rank0(i)+b.Rank1(i) != i {
			t.Fatalf("rank0+rank1 != i at %d", i)
		}
	}
}

func TestEdgeBits(t *testing.T) {
	b := &Bits{}
	b.Append(true)
	b.Build()
	if b.Ones() != 1 || b.Select1(1) != 0 || b.Rank1(1) != 1 {
		t.Fatal("single-bit sequence broken")
	}

	allZero := New(100)
	allZero.Build()
	if allZero.Ones() != 0 || allZero.Rank1(100) != 0 {
		t.Fatal("all-zero sequence broken")
	}
}

func TestSetClearsRankDirectory(t *testing.T) {
	b := New(64)
	b.Build()
	b.Set(3, true)
	b.Build()
	if b.Rank1(64) != 1 {
		t.Fatal("Set after Build not reflected")
	}
}

func TestBitsSerializationRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := buildRandom(t, n, 0.4, int64(n))
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBits(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != b.Len() || got.Ones() != b.Ones() {
			t.Fatalf("n=%d: shape mismatch", n)
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != b.Get(i) {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
}

func TestRankSelectProperty(t *testing.T) {
	b := buildRandom(t, 4096, 0.1, 99)
	f := func(k uint16) bool {
		kk := int(k)%b.Ones() + 1
		pos := b.Select1(kk)
		return b.Get(pos) && b.Rank1(pos) == kk-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWidthFor(t *testing.T) {
	cases := map[uint64]uint{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1<<63 - 1: 63}
	for v, w := range cases {
		if got := WidthFor(v); got != w {
			t.Errorf("WidthFor(%d) = %d want %d", v, got, w)
		}
	}
}

func TestLogArraySetGet(t *testing.T) {
	for _, width := range []uint{1, 3, 7, 8, 13, 31, 33, 64} {
		a := NewLogArray(width, 257)
		rng := rand.New(rand.NewSource(int64(width)))
		want := make([]uint64, a.Len())
		mask := ^uint64(0)
		if width < 64 {
			mask = 1<<width - 1
		}
		for i := range want {
			want[i] = rng.Uint64() & mask
			a.Set(i, want[i])
		}
		for i := range want {
			if got := a.Get(i); got != want[i] {
				t.Fatalf("width %d: Get(%d) = %d want %d", width, i, got, want[i])
			}
		}
	}
}

func TestLogArrayFromSlice(t *testing.T) {
	vs := []uint64{5, 0, 17, 3, 9, 1023}
	a := FromSlice(vs)
	if a.Width() != 10 {
		t.Fatalf("width = %d", a.Width())
	}
	for i, v := range vs {
		if a.Get(i) != v {
			t.Fatalf("Get(%d) = %d want %d", i, a.Get(i), v)
		}
	}
}

func TestLogArraySerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := make([]uint64, 300)
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 20))
	}
	a := FromSlice(vs)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLogArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != a.Len() || got.Width() != a.Width() {
		t.Fatal("shape mismatch")
	}
	for i := range vs {
		if got.Get(i) != vs[i] {
			t.Fatalf("Get(%d) differs", i)
		}
	}
}

func TestLogArrayPropertyRoundTrip(t *testing.T) {
	f := func(vs []uint64) bool {
		if len(vs) == 0 {
			return true
		}
		a := FromSlice(vs)
		for i, v := range vs {
			if a.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
