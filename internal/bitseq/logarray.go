package bitseq

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// LogArray is a packed array of unsigned integers, each stored in exactly
// `width` bits. It corresponds to the "log sequences" used by HDT to store
// predicate and object adjacency lists compactly.
type LogArray struct {
	width uint
	n     int
	words []uint64
}

// WidthFor returns the number of bits needed to store max (at least 1).
func WidthFor(max uint64) uint {
	if max == 0 {
		return 1
	}
	return uint(bits.Len64(max))
}

// NewLogArray returns an array of n zero values with the given bit width.
func NewLogArray(width uint, n int) *LogArray {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("bitseq: invalid log-array width %d", width))
	}
	totalBits := uint64(width) * uint64(n)
	return &LogArray{width: width, n: n, words: make([]uint64, (totalBits+wordBits-1)/wordBits)}
}

// FromSlice packs vs into a LogArray wide enough for its maximum value.
func FromSlice(vs []uint64) *LogArray {
	var max uint64
	for _, v := range vs {
		if v > max {
			max = v
		}
	}
	a := NewLogArray(WidthFor(max), len(vs))
	for i, v := range vs {
		a.Set(i, v)
	}
	return a
}

// Len returns the number of elements.
func (a *LogArray) Len() int { return a.n }

// Width returns the per-element bit width.
func (a *LogArray) Width() uint { return a.width }

// Set stores v at index i. v must fit in the array width.
func (a *LogArray) Set(i int, v uint64) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitseq: LogArray.Set(%d) out of range [0,%d)", i, a.n))
	}
	if a.width < 64 && v >= 1<<a.width {
		panic(fmt.Sprintf("bitseq: value %d does not fit in %d bits", v, a.width))
	}
	bitPos := uint64(i) * uint64(a.width)
	w, off := bitPos/wordBits, uint(bitPos%wordBits)
	mask := (uint64(1)<<a.width - 1)
	if a.width == 64 {
		mask = ^uint64(0)
	}
	a.words[w] = a.words[w]&^(mask<<off) | (v << off)
	if spill := off + a.width; spill > wordBits {
		hi := a.width - (wordBits - off)
		hiMask := uint64(1)<<hi - 1
		a.words[w+1] = a.words[w+1]&^hiMask | (v >> (wordBits - off))
	}
}

// Get returns the value at index i.
func (a *LogArray) Get(i int) uint64 {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitseq: LogArray.Get(%d) out of range [0,%d)", i, a.n))
	}
	bitPos := uint64(i) * uint64(a.width)
	w, off := bitPos/wordBits, uint(bitPos%wordBits)
	mask := (uint64(1)<<a.width - 1)
	if a.width == 64 {
		mask = ^uint64(0)
	}
	v := a.words[w] >> off
	if spill := off + a.width; spill > wordBits {
		v |= a.words[w+1] << (wordBits - off)
	}
	return v & mask
}

// WriteTo serializes the array.
func (a *LogArray) WriteTo(w io.Writer) (int64, error) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(a.width))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(a.n))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(16)
	buf := make([]byte, 8)
	totalBits := uint64(a.width) * uint64(a.n)
	nWords := int((totalBits + wordBits - 1) / wordBits)
	for i := 0; i < nWords; i++ {
		binary.LittleEndian.PutUint64(buf, a.words[i])
		if _, err := w.Write(buf); err != nil {
			return written, err
		}
		written += 8
	}
	return written, nil
}

// ReadLogArray deserializes an array written by WriteTo.
func ReadLogArray(r io.Reader) (*LogArray, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	width := uint(binary.LittleEndian.Uint64(hdr[0:8]))
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if width == 0 || width > 64 || n < 0 {
		return nil, fmt.Errorf("bitseq: corrupt log-array header (width=%d n=%d)", width, n)
	}
	a := NewLogArray(width, n)
	buf := make([]byte, 8)
	totalBits := uint64(width) * uint64(n)
	nWords := int((totalBits + wordBits - 1) / wordBits)
	for i := 0; i < nWords; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		a.words[i] = binary.LittleEndian.Uint64(buf)
	}
	return a, nil
}
