package bitseq

import "math/bits"

// Word-level bulk operations over raw little-endian bit vectors
// ([]uint64, bit i of the vector = word i/64, bit i%64). They back the dense
// representation of internal/bindset the same way the Bits type backs the
// HDT triple indexes: one package owns all the bit machinery.

// AndWords stores a AND b into dst and returns the number of set bits of the
// result. The three slices must have the same length; dst may alias a or b.
func AndWords(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		w := a[i] & b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// OrWords stores a OR b into dst and returns the number of set bits of the
// result. The three slices must have the same length; dst may alias a or b.
func OrWords(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		w := a[i] | b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// PopCount returns the number of set bits in words.
func PopCount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IterateOnes calls fn with the index of every set bit in ascending order,
// stopping early when fn returns false.
func IterateOnes(words []uint64, fn func(i int) bool) {
	for wi, w := range words {
		base := wi * wordBits
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}
