package bitseq

import "math/bits"

// Word-level bulk operations over raw little-endian bit vectors
// ([]uint64, bit i of the vector = word i/64, bit i%64). They back the dense
// representation of internal/bindset the same way the Bits type backs the
// HDT triple indexes: one package owns all the bit machinery.

// AndWords stores a AND b into dst and returns the number of set bits of the
// result. The three slices must have the same length; dst may alias a or b.
func AndWords(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		w := a[i] & b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// OrWords stores a OR b into dst and returns the number of set bits of the
// result. The three slices must have the same length; dst may alias a or b.
func OrWords(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		w := a[i] | b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndWordsMany stores a AND bs[j] into dsts[j] for every j and adds the
// result popcounts into cards[j] (callers zero cards first). All word slices
// must share a's length; dsts[j] may alias bs[j] but not a. The loop runs
// word-at-a-time across the batch: each word of a is loaded once and ANDed
// against the corresponding word of every candidate, so intersecting one
// prefix set against many candidates touches a only once instead of once
// per candidate.
func AndWordsMany(dsts [][]uint64, a []uint64, bs [][]uint64, cards []int) {
	for i, aw := range a {
		if aw == 0 {
			for j := range dsts {
				dsts[j][i] = 0
			}
			continue
		}
		for j := range dsts {
			w := aw & bs[j][i]
			dsts[j][i] = w
			cards[j] += bits.OnesCount64(w)
		}
	}
}

// PopCount returns the number of set bits in words.
func PopCount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IterateOnes calls fn with the index of every set bit in ascending order,
// stopping early when fn returns false.
func IterateOnes(words []uint64, fn func(i int) bool) {
	for wi, w := range words {
		base := wi * wordBits
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}
