// Package prominence builds the concept-prominence rankings underlying
// REMI's complexity estimator Ĉ (Section 3.1 of the paper): a global
// predicate ranking, entity prominence by in-KB frequency (fr) or PageRank
// (pr), per-predicate conditional object rankings, join-aware predicate
// rankings, and the power-law rank compression of Section 3.5.3 (Eq. 1).
package prominence

import (
	"math"
	"sort"
	"sync"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/stats"
)

// Metric selects the prominence signal for entities.
type Metric int

const (
	// Fr ranks entities by their number of occurrences in the KB.
	Fr Metric = iota
	// Pr ranks entities by PageRank over the KB's entity link graph (the
	// reproduction's stand-in for the Wikipedia page rank; fr is used as a
	// fallback wherever pr is undefined, e.g. for literals).
	Pr
	// Custom ranks entities by a caller-supplied score (the paper's §6
	// future work: prominence from search engines or external corpora).
	Custom
)

// String returns "fr", "pr" or "custom".
func (m Metric) String() string {
	switch m {
	case Pr:
		return "pr"
	case Custom:
		return "custom"
	default:
		return "fr"
	}
}

// JoinKind distinguishes the two predicate-join contexts Ĉ conditions on.
type JoinKind int

const (
	// JoinSO ranks p1 among predicates whose subjects join the objects of
	// p0 (first-to-second-argument joins, used by path shapes).
	JoinSO JoinKind = iota
	// JoinSS ranks p1 among predicates sharing subjects with p0 (used by
	// the closed shapes).
	JoinSS
)

// Store holds every ranking needed by the complexity estimator. Build one
// per (KB, Metric) pair; it is safe for concurrent use after construction.
type Store struct {
	K      *kb.KB
	Metric Metric

	predRank []int // predRank[p-1] = 1-based rank of predicate p by freq

	entScore []float64 // prominence score per entity (fr count or pagerank)

	// Conditional object rankings: per predicate, object -> 1-based rank.
	condRank []map[kb.EntID]int

	// Power-law fits (Eq. 1) per predicate: log2(rank) ≈ Slope*log2(score)+Intercept.
	fits  []stats.Linear
	fitOK []bool

	// Join counts: key (p0<<32|p1) -> strength.
	joinSO map[uint64]int
	joinSS map[uint64]int

	mu         sync.Mutex
	joinRankSO map[kb.PredID]map[kb.PredID]int // lazy per-p0 rankings
	joinRankSS map[kb.PredID]map[kb.PredID]int
	joinSizeSO map[kb.PredID]int
	joinSizeSS map[kb.PredID]int

	globalOnce sync.Once
	globalRank []int

	custom func(kb.EntID) float64 // entity scores when Metric == Custom
}

// Build constructs the full ranking store for k under metric m.
func Build(k *kb.KB, m Metric) *Store {
	return build(k, m, nil)
}

// BuildWithScores constructs a store whose entity prominence comes from a
// caller-supplied source (scores need not be normalized; higher is more
// prominent). Entities scored <= 0 fall back to a frequency-derived
// pseudo-score below the smallest positive custom score, mirroring the
// paper's "we use fr whenever pr is undefined" rule.
func BuildWithScores(k *kb.KB, score func(kb.EntID) float64) *Store {
	return build(k, Custom, score)
}

func build(k *kb.KB, m Metric, score func(kb.EntID) float64) *Store {
	s := &Store{
		K:          k,
		Metric:     m,
		custom:     score,
		joinRankSO: make(map[kb.PredID]map[kb.PredID]int),
		joinRankSS: make(map[kb.PredID]map[kb.PredID]int),
		joinSizeSO: make(map[kb.PredID]int),
		joinSizeSS: make(map[kb.PredID]int),
	}
	s.buildPredicateRanking()
	s.buildEntityScores()
	s.buildConditionalRankings()
	s.buildJoinCounts()
	return s
}

func (s *Store) buildPredicateRanking() {
	n := s.K.NumPredicates()
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = float64(s.K.PredFreq(kb.PredID(i + 1)))
	}
	s.predRank = stats.RankDescending(weights)
}

func (s *Store) buildEntityScores() {
	n := s.K.NumEntities()
	s.entScore = make([]float64, n)
	if s.Metric == Custom {
		minPos := math.Inf(1)
		for i := 0; i < n; i++ {
			if v := s.custom(kb.EntID(i + 1)); v > 0 {
				s.entScore[i] = v
				if v < minPos {
					minPos = v
				}
			}
		}
		if math.IsInf(minPos, 1) {
			minPos = 1
		}
		for i := 0; i < n; i++ {
			if s.entScore[i] == 0 {
				f := float64(s.K.EntityFreq(kb.EntID(i + 1)))
				s.entScore[i] = minPos * f / (1e6 + f)
			}
		}
		return
	}
	if s.Metric == Pr {
		pr := PageRank(s.K, 0.85, 30, 1e-9)
		copy(s.entScore, pr)
		// fr fallback where pr is undefined (literals never receive rank
		// mass; give them a frequency-derived pseudo-score scaled below the
		// smallest PageRank so they rank after all entities).
		minPR := math.Inf(1)
		for i, v := range pr {
			if v > 0 && v < minPR {
				minPR = v
			}
			_ = i
		}
		if math.IsInf(minPR, 1) {
			minPR = 1
		}
		for i := 0; i < n; i++ {
			if s.entScore[i] == 0 {
				f := float64(s.K.EntityFreq(kb.EntID(i + 1)))
				s.entScore[i] = minPR * f / (1e6 + f)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			s.entScore[i] = float64(s.K.EntityFreq(kb.EntID(i + 1)))
		}
	}
}

// EntityScore returns the prominence score of e under the store's metric.
func (s *Store) EntityScore(e kb.EntID) float64 { return s.entScore[e-1] }

// PredicateRank returns the 1-based global rank of p.
func (s *Store) PredicateRank(p kb.PredID) int { return s.predRank[p-1] }

// buildConditionalRankings ranks, for every predicate p, the objects of p by
// prominence (conditional frequency under fr; entity score under pr), and
// fits the Eq. 1 power law on (log2 score, log2 rank).
func (s *Store) buildConditionalRankings() {
	nP := s.K.NumPredicates()
	s.condRank = make([]map[kb.EntID]int, nP)
	s.fits = make([]stats.Linear, nP)
	s.fitOK = make([]bool, nP)

	for pi := 0; pi < nP; pi++ {
		p := kb.PredID(pi + 1)
		facts := s.K.Facts(p)
		// Distinct objects with conditional frequency.
		freq := make(map[kb.EntID]int)
		for _, pr := range facts {
			freq[pr.O]++
		}
		objs := make([]kb.EntID, 0, len(freq))
		for o := range freq {
			objs = append(objs, o)
		}
		score := func(o kb.EntID) float64 {
			if s.Metric != Fr {
				return s.entScore[o-1]
			}
			return float64(freq[o])
		}
		sort.Slice(objs, func(i, j int) bool {
			si, sj := score(objs[i]), score(objs[j])
			if si != sj {
				return si > sj
			}
			return objs[i] < objs[j]
		})
		rank := make(map[kb.EntID]int, len(objs))
		for i, o := range objs {
			rank[o] = i + 1
		}
		s.condRank[pi] = rank

		// Eq. 1 fit: log2(rank) against log2(conditional frequency); for pr
		// the score replaces frequency, as the paper notes the power law
		// extrapolates to the page rank.
		var xs, ys []float64
		for i, o := range objs {
			sc := score(o)
			if sc <= 0 {
				continue
			}
			xs = append(xs, math.Log2(sc))
			ys = append(ys, math.Log2(float64(i+1)))
		}
		if fit, err := stats.FitLinear(xs, ys); err == nil {
			s.fits[pi] = fit
			s.fitOK[pi] = true
		}
	}
}

// CondRank returns the exact 1-based rank of object o among the objects of
// predicate p; ok is false when o never appears as object of p.
func (s *Store) CondRank(p kb.PredID, o kb.EntID) (int, bool) {
	r, ok := s.condRank[p-1][o]
	return r, ok
}

// CondDomainSize returns the number of distinct objects of p.
func (s *Store) CondDomainSize(p kb.PredID) int { return len(s.condRank[p-1]) }

// Fit returns the Eq. 1 coefficients for predicate p; ok is false when the
// predicate had too few distinct object frequencies to fit.
func (s *Store) Fit(p kb.PredID) (stats.Linear, bool) {
	return s.fits[p-1], s.fitOK[p-1]
}

// EstimatedLogRank estimates log2 k(o|p) via the Eq. 1 compression; it falls
// back to the exact rank when no fit is available.
func (s *Store) EstimatedLogRank(p kb.PredID, o kb.EntID) float64 {
	var sc float64
	if s.Metric != Fr {
		sc = s.entScore[o-1]
	} else {
		sc = float64(s.K.ObjFreq(p, o))
	}
	if s.fitOK[p-1] && sc > 0 {
		est := s.fits[p-1].Eval(math.Log2(sc))
		if est < 0 {
			est = 0
		}
		return est
	}
	if r, ok := s.CondRank(p, o); ok {
		return math.Log2(float64(r))
	}
	// Unknown object: price it beyond the known domain.
	return math.Log2(float64(s.CondDomainSize(p) + 1))
}

// AverageFitR2 returns the mean R² of the Eq. 1 fits across predicates with
// at least minPoints distinct ranked objects (the paper reports 0.85 for
// DBpedia-fr, 0.88 for Wikidata-fr, 0.91 for DBpedia-pr).
func (s *Store) AverageFitR2(minPoints int) (avg float64, fitted int) {
	var sum float64
	for pi := range s.fits {
		if s.fitOK[pi] && s.fits[pi].N >= minPoints {
			sum += s.fits[pi].R2
			fitted++
		}
	}
	if fitted == 0 {
		return 0, 0
	}
	return sum / float64(fitted), fitted
}

// buildJoinCounts accumulates, for every ordered predicate pair (p0,p1), the
// number of p1 facts whose subject is an object of p0 (JoinSO) or a subject
// of p0 (JoinSS). A single pass over the facts with per-entity predicate
// lists keeps this near-linear in the KB size.
func (s *Store) buildJoinCounts() {
	k := s.K
	nEnt := k.NumEntities()
	// objPreds[e]: predicates having e as object; subjPreds[e]: as subject.
	objPreds := make([][]kb.PredID, nEnt+1)
	subjPreds := make([][]kb.PredID, nEnt+1)
	for _, p := range k.Predicates() {
		var lastS, lastO kb.EntID
		for _, pr := range k.Facts(p) {
			if pr.S != lastS || len(subjPreds[pr.S]) == 0 || subjPreds[pr.S][len(subjPreds[pr.S])-1] != p {
				subjPreds[pr.S] = append(subjPreds[pr.S], p)
				lastS = pr.S
			}
			if pr.O != lastO || len(objPreds[pr.O]) == 0 || objPreds[pr.O][len(objPreds[pr.O])-1] != p {
				objPreds[pr.O] = append(objPreds[pr.O], p)
				lastO = pr.O
			}
		}
	}
	s.joinSO = make(map[uint64]int)
	s.joinSS = make(map[uint64]int)
	for _, p1 := range k.Predicates() {
		for _, pr := range k.Facts(p1) {
			for _, p0 := range objPreds[pr.S] {
				s.joinSO[joinKey(p0, p1)]++
			}
			for _, p0 := range subjPreds[pr.S] {
				if p0 != p1 {
					s.joinSS[joinKey(p0, p1)]++
				}
			}
		}
	}
}

func joinKey(p0, p1 kb.PredID) uint64 { return uint64(p0)<<32 | uint64(p1) }

// JoinRank returns the 1-based rank of p1 among the predicates that join
// with p0 under kind, plus the number of such join partners. Rankings are
// computed lazily per p0 and cached.
func (s *Store) JoinRank(kind JoinKind, p0, p1 kb.PredID) (rank, domain int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cache map[kb.PredID]map[kb.PredID]int
	var sizes map[kb.PredID]int
	var counts map[uint64]int
	if kind == JoinSO {
		cache, sizes, counts = s.joinRankSO, s.joinSizeSO, s.joinSO
	} else {
		cache, sizes, counts = s.joinRankSS, s.joinSizeSS, s.joinSS
	}
	rm, have := cache[p0]
	if !have {
		type pc struct {
			p kb.PredID
			c int
		}
		var partners []pc
		for _, p := range s.K.Predicates() {
			if c := counts[joinKey(p0, p)]; c > 0 {
				partners = append(partners, pc{p, c})
			}
		}
		sort.Slice(partners, func(i, j int) bool {
			if partners[i].c != partners[j].c {
				return partners[i].c > partners[j].c
			}
			return partners[i].p < partners[j].p
		})
		rm = make(map[kb.PredID]int, len(partners))
		for i, x := range partners {
			rm[x.p] = i + 1
		}
		cache[p0] = rm
		sizes[p0] = len(partners)
	}
	r, ok := rm[p1]
	return r, sizes[p0], ok
}

// EntityRankGlobal returns the 1-based ranks of every entity in the global
// prominence ranking (used by the qualitative evaluation to pick prominent
// entities). The ranking is computed once and cached.
func (s *Store) EntityRankGlobal() []int {
	s.globalOnce.Do(func() {
		s.globalRank = stats.RankDescending(s.entScore)
	})
	return s.globalRank
}

// GlobalEntityRank returns the 1-based global prominence rank of e.
func (s *Store) GlobalEntityRank(e kb.EntID) int {
	return s.EntityRankGlobal()[e-1]
}

// TopEntities returns the n highest-scoring entities that satisfy keep
// (nil keeps everything except literals).
func (s *Store) TopEntities(n int, keep func(kb.EntID) bool) []kb.EntID {
	type es struct {
		e kb.EntID
		v float64
	}
	all := make([]es, 0, len(s.entScore))
	for i, v := range s.entScore {
		e := kb.EntID(i + 1)
		if keep == nil {
			if s.K.Kind(e) == rdf.Literal {
				continue
			}
		} else if !keep(e) {
			continue
		}
		all = append(all, es{e, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].e < all[j].e
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]kb.EntID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].e
	}
	return out
}
