package prominence

import (
	"math"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// PageRank computes the PageRank vector over the KB's entity link graph:
// one node per non-literal entity, one directed edge s→o per base
// (non-inverse) fact whose object is an entity. This substitutes for the
// Wikipedia page rank the paper uses for Ĉpr; it plays the same role of a
// prominence signal decoupled from raw frequency.
//
// damping is the usual teleportation factor (0.85 in the paper's tradition),
// maxIter bounds the power iteration and eps is the L1 convergence
// threshold. The returned slice is indexed by EntID-1; literals keep 0.
func PageRank(k *kb.KB, damping float64, maxIter int, eps float64) []float64 {
	n := k.NumEntities()
	rank := make([]float64, n)
	if n == 0 {
		return rank
	}

	// Adjacency: out-edges per entity (entity objects of base facts only).
	outDeg := make([]int, n+1)
	type edge struct{ from, to kb.EntID }
	var edges []edge
	nodes := make([]bool, n+1)
	for _, p := range k.Predicates() {
		if k.IsInverse(p) {
			continue
		}
		for _, pr := range k.Facts(p) {
			if k.Kind(pr.O) == rdf.Literal {
				continue
			}
			edges = append(edges, edge{pr.S, pr.O})
			outDeg[pr.S]++
			nodes[pr.S] = true
			nodes[pr.O] = true
		}
	}
	nNodes := 0
	for i := 1; i <= n; i++ {
		if k.Kind(kb.EntID(i)) != rdf.Literal {
			nodes[i] = true
		}
		if nodes[i] {
			nNodes++
		}
	}
	if nNodes == 0 {
		return rank
	}

	cur := make([]float64, n+1)
	next := make([]float64, n+1)
	init := 1.0 / float64(nNodes)
	for i := 1; i <= n; i++ {
		if nodes[i] {
			cur[i] = init
		}
	}
	base := (1 - damping) / float64(nNodes)
	for iter := 0; iter < maxIter; iter++ {
		// Mass from dangling nodes is spread uniformly.
		dangling := 0.0
		for i := 1; i <= n; i++ {
			if nodes[i] && outDeg[i] == 0 {
				dangling += cur[i]
			}
		}
		spread := damping * dangling / float64(nNodes)
		for i := 1; i <= n; i++ {
			if nodes[i] {
				next[i] = base + spread
			} else {
				next[i] = 0
			}
		}
		for _, e := range edges {
			next[e.to] += damping * cur[e.from] / float64(outDeg[e.from])
		}
		delta := 0.0
		for i := 1; i <= n; i++ {
			delta += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if delta < eps {
			break
		}
	}
	copy(rank, cur[1:])
	return rank
}
