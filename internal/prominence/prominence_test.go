package prominence

import (
	"math"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func buildKB(t testing.TB, triples [][3]string) *kb.KB {
	t.Helper()
	b := kb.NewBuilder()
	for _, tr := range triples {
		err := b.Add(rdf.Triple{
			S: rdf.NewIRI("http://e/" + tr[0]),
			P: rdf.NewIRI("http://e/" + tr[1]),
			O: rdf.NewIRI("http://e/" + tr[2]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(kb.Options{})
}

func TestPredicateRanking(t *testing.T) {
	k := buildKB(t, [][3]string{
		{"a", "p", "x"}, {"b", "p", "x"}, {"c", "p", "y"},
		{"a", "q", "x"},
	})
	s := Build(k, Fr)
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	if s.PredicateRank(p) != 1 || s.PredicateRank(q) != 2 {
		t.Fatalf("ranks: p=%d q=%d", s.PredicateRank(p), s.PredicateRank(q))
	}
}

func TestConditionalRanking(t *testing.T) {
	k := buildKB(t, [][3]string{
		{"a", "p", "x"}, {"b", "p", "x"}, {"c", "p", "x"},
		{"d", "p", "y"},
	})
	s := Build(k, Fr)
	p := k.MustPredicateID("http://e/p")
	x := k.MustEntityID("http://e/x")
	y := k.MustEntityID("http://e/y")
	rx, ok := s.CondRank(p, x)
	if !ok || rx != 1 {
		t.Fatalf("rank(x|p) = %d ok=%v", rx, ok)
	}
	ry, _ := s.CondRank(p, y)
	if ry != 2 {
		t.Fatalf("rank(y|p) = %d", ry)
	}
	if s.CondDomainSize(p) != 2 {
		t.Fatalf("domain = %d", s.CondDomainSize(p))
	}
	if _, ok := s.CondRank(p, k.MustEntityID("http://e/a")); ok {
		t.Fatal("subject ranked as object")
	}
}

func TestJoinRankSO(t *testing.T) {
	// p's objects {x} feed q (x is q's subject twice) and r (once):
	// q ranks above r among p's SO-join partners.
	k := buildKB(t, [][3]string{
		{"a", "p", "x"},
		{"x", "q", "m"}, {"x", "q", "n"},
		{"x", "r", "m"},
	})
	s := Build(k, Fr)
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	r := k.MustPredicateID("http://e/r")
	rq, dom, ok := s.JoinRank(JoinSO, p, q)
	if !ok || rq != 1 || dom != 2 {
		t.Fatalf("JoinRank(p,q) = %d dom=%d ok=%v", rq, dom, ok)
	}
	rr, _, _ := s.JoinRank(JoinSO, p, r)
	if rr != 2 {
		t.Fatalf("JoinRank(p,r) = %d", rr)
	}
	if _, _, ok := s.JoinRank(JoinSO, q, p); ok {
		t.Fatal("no join between q's objects and p's subjects expected")
	}
}

func TestJoinRankSS(t *testing.T) {
	k := buildKB(t, [][3]string{
		{"a", "p", "x"}, {"a", "q", "y"}, {"a", "q", "z"},
		{"b", "p", "x"}, {"b", "r", "y"},
	})
	s := Build(k, Fr)
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	rq, _, ok := s.JoinRank(JoinSS, p, q)
	if !ok || rq < 1 {
		t.Fatalf("JoinRank SS = %d ok=%v", rq, ok)
	}
}

func TestEstimatedLogRankMonotone(t *testing.T) {
	// More frequent objects should get lower estimated log-ranks.
	var triples [][3]string
	for i := 0; i < 30; i++ {
		triples = append(triples, [3]string{sname(i), "p", "top"})
	}
	for i := 0; i < 10; i++ {
		triples = append(triples, [3]string{sname(i), "p", "mid"})
	}
	triples = append(triples, [3]string{"z", "p", "tail"})
	k := buildKB(t, triples)
	s := Build(k, Fr)
	p := k.MustPredicateID("http://e/p")
	top := k.MustEntityID("http://e/top")
	mid := k.MustEntityID("http://e/mid")
	tail := k.MustEntityID("http://e/tail")
	lt, lm, ll := s.EstimatedLogRank(p, top), s.EstimatedLogRank(p, mid), s.EstimatedLogRank(p, tail)
	if !(lt <= lm && lm <= ll) {
		t.Fatalf("estimated log ranks not monotone: %f %f %f", lt, lm, ll)
	}
}

func sname(i int) string { return "s" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

func TestPageRankBasics(t *testing.T) {
	// star: many pages link to hub → hub has the top PageRank.
	k := buildKB(t, [][3]string{
		{"a", "l", "hub"}, {"b", "l", "hub"}, {"c", "l", "hub"}, {"hub", "l", "a"},
	})
	pr := PageRank(k, 0.85, 50, 1e-12)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Fatalf("PageRank mass = %f, want 1", sum)
	}
	hub := k.MustEntityID("http://e/hub")
	for e := 1; e <= k.NumEntities(); e++ {
		if kb.EntID(e) != hub && pr[e-1] >= pr[hub-1] {
			t.Fatalf("hub should dominate: pr[%d]=%f >= pr[hub]=%f", e, pr[e-1], pr[hub-1])
		}
	}
}

func TestPageRankSkipsLiterals(t *testing.T) {
	b := kb.NewBuilder()
	b.Add(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewLiteral("lit")})
	b.Add(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/b")})
	k := b.Build(kb.Options{})
	pr := PageRank(k, 0.85, 30, 1e-9)
	lit, _ := k.EntityID(rdf.NewLiteral("lit"))
	if pr[lit-1] != 0 {
		t.Fatal("literal received PageRank mass")
	}
}

func TestAverageFitR2OnZipfianData(t *testing.T) {
	d := datagen.DBpediaLike(datagen.Config{Seed: 9, Scale: 0.05})
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := Build(k, Fr)
	avg, n := s.AverageFitR2(15)
	if n == 0 {
		t.Fatal("no predicates fitted")
	}
	if avg < 0.6 || avg > 1 {
		t.Fatalf("avg R² = %f outside the expected power-law regime", avg)
	}
}

func TestGlobalEntityRank(t *testing.T) {
	k := buildKB(t, [][3]string{
		{"a", "p", "hub"}, {"b", "p", "hub"}, {"c", "p", "hub"}, {"a", "p", "x"},
	})
	s := Build(k, Fr)
	hub := k.MustEntityID("http://e/hub")
	if s.GlobalEntityRank(hub) != 1 {
		t.Fatalf("hub rank = %d", s.GlobalEntityRank(hub))
	}
}

func TestTopEntitiesExcludesLiterals(t *testing.T) {
	b := kb.NewBuilder()
	for i := 0; i < 5; i++ {
		b.Add(rdf.Triple{S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"), O: rdf.NewLiteral("L")})
		b.Add(rdf.Triple{S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/o")})
	}
	k := b.Build(kb.Options{})
	s := Build(k, Fr)
	for _, e := range s.TopEntities(10, nil) {
		if k.IsLiteral(e) {
			t.Fatal("literal in TopEntities")
		}
	}
}

func TestPrMetricFallsBackForLiterals(t *testing.T) {
	b := kb.NewBuilder()
	b.Add(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewLiteral("x")})
	b.Add(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/q"), O: rdf.NewIRI("http://e/b")})
	k := b.Build(kb.Options{})
	s := Build(k, Pr)
	lit, _ := k.EntityID(rdf.NewLiteral("x"))
	bEnt := k.MustEntityID("http://e/b")
	if s.EntityScore(lit) <= 0 {
		t.Fatal("literal got no fallback score")
	}
	if s.EntityScore(lit) >= s.EntityScore(bEnt) {
		t.Fatal("literal fallback should rank below entities with PageRank")
	}
}
