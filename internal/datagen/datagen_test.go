package datagen

import (
	"math"
	"sort"
	"testing"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

func TestDBpediaLikeDeterminism(t *testing.T) {
	a := DBpediaLike(Config{Seed: 7, Scale: 0.05})
	b := DBpediaLike(Config{Seed: 7, Scale: 0.05})
	if len(a.Triples) != len(b.Triples) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Triples), len(b.Triples))
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	c := DBpediaLike(Config{Seed: 8, Scale: 0.05})
	same := len(c.Triples) == len(a.Triples)
	if same {
		identical := true
		for i := range a.Triples {
			if a.Triples[i] != c.Triples[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestDatasetStructure(t *testing.T) {
	for _, d := range []*Dataset{
		DBpediaLike(Config{Seed: 3, Scale: 0.05}),
		WikidataLike(Config{Seed: 3, Scale: 0.05}),
	} {
		if len(d.Triples) == 0 {
			t.Fatalf("%s: empty dataset", d.Name)
		}
		k, err := d.BuildKB(kb.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if k.TypePredicate() == 0 || k.LabelPredicate() == 0 {
			t.Fatalf("%s: type/label predicates missing", d.Name)
		}
		// Every class member must carry its type fact.
		for class, members := range d.Members {
			classID, ok := k.EntityID(rdf.NewIRI(d.Classes[class]))
			if !ok {
				t.Fatalf("%s: class %s not in KB", d.Name, class)
			}
			for _, iri := range members[:min(5, len(members))] {
				e, ok := k.EntityID(rdf.NewIRI(iri))
				if !ok {
					t.Fatalf("%s: member %s missing", d.Name, iri)
				}
				if !hasType(k, e, classID) {
					t.Fatalf("%s: %s lacks type %s", d.Name, iri, class)
				}
			}
		}
		// Ground-truth popularity must cover the class members and be
		// monotonically non-increasing in rank.
		for class, members := range d.Members {
			var prev = math.Inf(1)
			for _, iri := range members {
				pop, ok := d.TruePop[iri]
				if !ok {
					t.Fatalf("%s: no TruePop for %s (%s)", d.Name, iri, class)
				}
				if pop > prev {
					t.Fatalf("%s: TruePop not sorted within %s", d.Name, class)
				}
				prev = pop
			}
		}
	}
}

func hasType(k *kb.KB, e, class kb.EntID) bool {
	for _, c := range k.Types(e) {
		if c == class {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestZipfianObjectFrequencies verifies the generated object-frequency
// distribution is heavy-tailed: the most frequent object of a relational
// predicate should cover many facts while the median object covers few.
func TestZipfianObjectFrequencies(t *testing.T) {
	d := DBpediaLike(Config{Seed: 11, Scale: 0.2})
	k, err := d.BuildKB(kb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := k.PredicateID("http://dbpedia.demo/ontology/birthPlace")
	if !ok {
		t.Fatal("birthPlace missing")
	}
	freq := map[kb.EntID]int{}
	for _, pr := range k.Facts(p) {
		freq[pr.O]++
	}
	if len(freq) < 10 {
		t.Skip("too few objects at this scale")
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if counts[0] < 4*counts[len(counts)/2] {
		t.Fatalf("distribution not heavy-tailed: top=%d median=%d", counts[0], counts[len(counts)/2])
	}
}

func TestBlankNodesGenerated(t *testing.T) {
	d := DBpediaLike(Config{Seed: 13, Scale: 0.2})
	blanks := 0
	for _, tr := range d.Triples {
		if tr.O.Kind == rdf.Blank {
			blanks++
		}
	}
	if blanks == 0 {
		t.Fatal("no blank-node facts generated (career stations)")
	}
}

func TestLiteralsGenerated(t *testing.T) {
	d := WikidataLike(Config{Seed: 13, Scale: 0.1})
	lits := 0
	for _, tr := range d.Triples {
		if tr.O.Kind == rdf.Literal {
			lits++
		}
	}
	if lits == 0 {
		t.Fatal("no literal facts generated")
	}
}

func TestTinyGeoExamples(t *testing.T) {
	d := TinyGeo()
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	id := func(n string) kb.EntID {
		e, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
		if !ok {
			t.Fatalf("missing %s", n)
		}
		return e
	}
	// The Section 2.2 invariant: exactly Guyana and Suriname are South
	// American countries with a Germanic official language.
	in := k.MustPredicateID("http://tiny.demo/ontology/in")
	off := k.MustPredicateID("http://tiny.demo/ontology/officialLanguage")
	fam := k.MustPredicateID("http://tiny.demo/ontology/langFamily")
	sa := id("SouthAmerica")
	germanic := id("Germanic")

	var matches []kb.EntID
	for _, c := range k.Subjects(in, sa) {
		for _, lang := range k.Objects(off, c) {
			if k.HasFact(fam, lang, germanic) {
				matches = append(matches, c)
				break
			}
		}
	}
	if len(matches) != 2 {
		t.Fatalf("Germanic-language SA countries: %d, want 2", len(matches))
	}
	// Figure 1 invariant: exactly Rennes and Nantes belonged to Brittany.
	belonged := k.MustPredicateID("http://tiny.demo/ontology/belongedTo")
	if got := len(k.Subjects(belonged, id("Brittany"))); got != 2 {
		t.Fatalf("Brittany cities = %d", got)
	}
	// Every country has a capital (so capital(x,y)∧type(y,City) is not an
	// accidental RE for the Guyana/Suriname pair).
	capital := k.MustPredicateID("http://tiny.demo/ontology/capital")
	for _, c := range k.Subjects(in, sa) {
		if len(k.Objects(capital, c)) == 0 {
			t.Fatalf("country %s lacks a capital", k.Label(c))
		}
	}
}
