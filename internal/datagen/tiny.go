package datagen

import "github.com/remi-kb/remi/internal/rdf"

// TinyGeo returns a small hand-written KB covering the paper's running
// examples: "capital of France" for Paris (Section 1), the Guyana/Suriname
// RE of Section 2.2 (in South America with a Germanic official language),
// and the Rennes/Nantes search space of Figure 1 (belongedTo Brittany,
// mayor in the Socialist party, place of Epitech). It is used by tests,
// documentation examples and the Figure 1 walk-through.
func TinyGeo() *Dataset {
	const ns = "http://tiny.demo/resource/"
	const ont = "http://tiny.demo/ontology/"
	e := func(local string) rdf.Term { return rdf.NewIRI(ns + local) }
	p := func(local string) rdf.Term { return rdf.NewIRI(ont + local) }
	typeP := rdf.NewIRI(TypeIRI)
	labelP := rdf.NewIRI(LabelIRI)

	d := &Dataset{
		Name:    "tiny-geo",
		TruePop: map[string]float64{},
		Classes: map[string]string{
			"City":     ont + "City",
			"Country":  ont + "Country",
			"Language": ont + "Language",
			"Person":   ont + "Person",
		},
		Members: map[string][]string{},
	}
	add := func(s, pr, o rdf.Term) { d.Triples = append(d.Triples, rdf.Triple{S: s, P: pr, O: o}) }

	city := rdf.NewIRI(ont + "City")
	country := rdf.NewIRI(ont + "Country")
	language := rdf.NewIRI(ont + "Language")
	person := rdf.NewIRI(ont + "Person")

	cities := []string{"Paris", "Berlin", "London", "Rennes", "Nantes", "Lyon", "Marseille", "Hamburg",
		"Georgetown", "Paramaribo", "Brasilia", "BuenosAires", "Lima", "Quito", "Bogota", "Caracas", "Santiago", "LaPaz", "Amsterdam"}
	countries := []string{"France", "Germany", "UK", "Guyana", "Suriname", "Brazil", "Argentina", "Peru", "Ecuador", "Colombia", "Venezuela", "Chile", "Bolivia", "Netherlands"}
	languages := []string{"French", "German", "English", "Dutch", "Spanish", "Portuguese"}
	people := []string{"Hugo", "Voltaire", "Einstein", "Kleiner", "Mueller", "MayorRennes", "MayorNantes", "MayorLyon"}

	for _, c := range cities {
		add(e(c), typeP, city)
		add(e(c), labelP, rdf.NewLiteral(c))
		d.Members["City"] = append(d.Members["City"], ns+c)
	}
	for _, c := range countries {
		add(e(c), typeP, country)
		add(e(c), labelP, rdf.NewLiteral(c))
		d.Members["Country"] = append(d.Members["Country"], ns+c)
	}
	for _, l := range languages {
		add(e(l), typeP, language)
		add(e(l), labelP, rdf.NewLiteral(l))
		d.Members["Language"] = append(d.Members["Language"], ns+l)
	}
	for _, h := range people {
		add(e(h), typeP, person)
		add(e(h), labelP, rdf.NewLiteral(h))
		d.Members["Person"] = append(d.Members["Person"], ns+h)
	}

	// Cities and countries.
	cityIn := map[string]string{
		"Paris": "France", "Rennes": "France", "Nantes": "France", "Lyon": "France",
		"Marseille": "France", "Berlin": "Germany", "Hamburg": "Germany",
		"London": "UK", "Georgetown": "Guyana", "Paramaribo": "Suriname",
	}
	for c, k := range cityIn {
		add(e(c), p("cityIn"), e(k))
	}
	capitals := map[string]string{
		"France": "Paris", "Germany": "Berlin", "UK": "London",
		"Guyana": "Georgetown", "Suriname": "Paramaribo", "Brazil": "Brasilia",
		"Argentina": "BuenosAires", "Peru": "Lima", "Ecuador": "Quito",
		"Colombia": "Bogota", "Venezuela": "Caracas", "Chile": "Santiago",
		"Bolivia": "LaPaz", "Netherlands": "Amsterdam",
	}
	for k, c := range capitals {
		add(e(k), p("capital"), e(c))
	}

	// Continent membership (Section 2.2 example).
	for _, k := range []string{"Guyana", "Suriname", "Brazil", "Argentina", "Peru", "Ecuador", "Colombia", "Venezuela", "Chile", "Bolivia"} {
		add(e(k), p("in"), e("SouthAmerica"))
	}
	for _, k := range []string{"France", "Germany", "UK", "Netherlands"} {
		add(e(k), p("in"), e("Europe"))
	}

	// Official languages and families: Guyana (English) and Suriname (Dutch)
	// are the two South American countries with a Germanic official language.
	offLang := map[string][]string{
		"France": {"French"}, "Germany": {"German"}, "UK": {"English"},
		"Netherlands": {"Dutch"}, "Guyana": {"English"}, "Suriname": {"Dutch"},
		"Brazil": {"Portuguese"}, "Argentina": {"Spanish"}, "Peru": {"Spanish"},
		"Ecuador": {"Spanish"}, "Colombia": {"Spanish"}, "Venezuela": {"Spanish"},
		"Chile": {"Spanish"}, "Bolivia": {"Spanish"},
	}
	for k, ls := range offLang {
		for _, l := range ls {
			add(e(k), p("officialLanguage"), e(l))
		}
	}
	add(e("French"), p("langFamily"), e("Romance"))
	add(e("Spanish"), p("langFamily"), e("Romance"))
	add(e("Portuguese"), p("langFamily"), e("Romance"))
	add(e("German"), p("langFamily"), e("Germanic"))
	add(e("English"), p("langFamily"), e("Germanic"))
	add(e("Dutch"), p("langFamily"), e("Germanic"))

	// Figure 1: Rennes and Nantes.
	add(e("Rennes"), p("belongedTo"), e("Brittany"))
	add(e("Nantes"), p("belongedTo"), e("Brittany"))
	add(e("Rennes"), p("mayor"), e("MayorRennes"))
	add(e("Nantes"), p("mayor"), e("MayorNantes"))
	add(e("Lyon"), p("mayor"), e("MayorLyon"))
	add(e("MayorRennes"), p("party"), e("Socialist"))
	add(e("MayorNantes"), p("party"), e("Socialist"))
	add(e("MayorLyon"), p("party"), e("Conservative"))
	add(e("Rennes"), p("placeOf"), e("Epitech"))
	add(e("Nantes"), p("placeOf"), e("Epitech"))
	add(e("Paris"), p("placeOf"), e("Epitech"))

	// People (Section 3.2: the supervisor-of-Einstein chain).
	add(e("Hugo"), p("restingPlace"), e("Paris"))
	add(e("Voltaire"), p("birthPlace"), e("Paris"))
	add(e("Kleiner"), p("supervisor"), e("Einstein"))
	add(e("Mueller"), p("supervisor"), e("Kleiner"))

	// Popularity ground truth: rough plausibilities for the study simulator.
	pop := map[string]float64{
		"Paris": 1.0, "France": 1.0, "Germany": 0.9, "Berlin": 0.8, "UK": 0.9,
		"London": 0.9, "Einstein": 1.0, "Hugo": 0.7, "Voltaire": 0.6,
		"SouthAmerica": 0.8, "Europe": 0.9, "English": 0.9, "Socialist": 0.5,
	}
	for k, v := range pop {
		d.TruePop[ns+k] = v
	}
	return d
}
