// Package datagen produces the seeded synthetic datasets that substitute
// for DBpedia 2016-10 and the Wikidata dump in the paper's evaluation (see
// DESIGN.md, substitution 1). The generators preserve the statistical shape
// the algorithms are sensitive to: Zipfian entity and predicate frequencies
// (the regime behind Eq. 1), the evaluation classes, literal attributes,
// type assertions, blank nodes, and dense cross-class links.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
	"github.com/remi-kb/remi/internal/zipf"
)

// RDF vocabulary shared by the generators.
const (
	TypeIRI  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	LabelIRI = "http://www.w3.org/2000/01/rdf-schema#label"
)

// Config seeds and scales a generator.
type Config struct {
	// Seed makes the dataset fully reproducible.
	Seed int64
	// Scale multiplies every class population (1.0 ≈ tens of thousands of
	// facts; tests use ~0.1).
	Scale float64
}

// Dataset is a generated KB plus the generator's hidden ground truth, used
// by the simulated user studies.
type Dataset struct {
	Name    string
	Triples []rdf.Triple
	// TruePop maps entity IRIs to the latent popularity weight the
	// generator sampled them with; the study simulator treats it as the
	// users' true familiarity with the concept.
	TruePop map[string]float64
	// Classes maps a short class name (e.g. "Person") to its class IRI.
	Classes map[string]string
	// Members lists the entity IRIs of each short class name, most popular
	// first.
	Members map[string][]string
}

// BuildKB indexes the dataset with the paper's KB options.
func (d *Dataset) BuildKB(opts kb.Options) (*kb.KB, error) {
	return kb.FromTriples(d.Triples, opts)
}

// schema machinery -----------------------------------------------------------

type classSpec struct {
	name string
	n    int // population at Scale = 1
	pop  float64
	zipf float64 // exponent for within-class popularity
}

// rangeKind describes what a predicate points at.
type rangeKind int

const (
	toClass rangeKind = iota
	toYear
	toNumber
	toBlankStation // blank node with its own sub-facts
)

type predSpec struct {
	name   string
	domain []string
	rng    string // class name when kind == toClass
	kind   rangeKind
	avg    float64 // expected out-degree per domain entity
	zipf   float64 // object-choice exponent (bigger = more skewed)
}

type generator struct {
	rng      *rand.Rand
	ns       string
	ont      string
	ds       *Dataset
	classIDs map[string][]string // class -> entity IRIs (index = rank)
	samplers map[string]*zipf.Sampler
}

func newGenerator(name, ns, ont string, cfg Config) *generator {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return &generator{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ns:  ns,
		ont: ont,
		ds: &Dataset{
			Name:    name,
			TruePop: make(map[string]float64),
			Classes: make(map[string]string),
			Members: make(map[string][]string),
		},
		classIDs: make(map[string][]string),
		samplers: make(map[string]*zipf.Sampler),
	}
}

func (g *generator) add(s, p, o rdf.Term) {
	g.ds.Triples = append(g.ds.Triples, rdf.Triple{S: s, P: p, O: o})
}

func (g *generator) iri(local string) rdf.Term  { return rdf.NewIRI(g.ns + local) }
func (g *generator) prop(local string) rdf.Term { return rdf.NewIRI(g.ont + local) }

// makeClasses mints the entities of each class with Zipfian latent
// popularity, plus type and label facts.
func (g *generator) makeClasses(classes []classSpec, scale float64) {
	typeP := rdf.NewIRI(TypeIRI)
	labelP := rdf.NewIRI(LabelIRI)
	for _, c := range classes {
		n := int(float64(c.n) * scale)
		if n < 4 {
			n = 4
		}
		classIRI := g.ont + c.name
		g.ds.Classes[c.name] = classIRI
		classTerm := rdf.NewIRI(classIRI)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			local := fmt.Sprintf("%s_%d", c.name, i+1)
			e := g.iri(local)
			ids[i] = e.Value
			g.add(e, typeP, classTerm)
			g.add(e, labelP, rdf.NewLiteral(fmt.Sprintf("%s %d", c.name, i+1)))
			g.ds.TruePop[e.Value] = c.pop * zipf.Weight(c.zipf, i)
		}
		g.classIDs[c.name] = ids
		g.ds.Members[c.name] = ids
		g.samplers[c.name] = zipf.NewSampler(g.rng, c.zipf, n)
	}
}

// pick draws an object entity of the class with the predicate's skew; the
// class sampler is reused when exponents match, otherwise re-skewed by
// rejection toward the requested exponent.
func (g *generator) pick(class string, skew float64) rdf.Term {
	ids := g.classIDs[class]
	var idx int
	if skew <= 0 {
		idx = g.rng.Intn(len(ids))
	} else {
		s, ok := g.samplers[class+fmt.Sprintf("|%.2f", skew)]
		if !ok {
			s = zipf.NewSampler(g.rng, skew, len(ids))
			g.samplers[class+fmt.Sprintf("|%.2f", skew)] = s
		}
		idx = s.Next()
	}
	return rdf.NewIRI(ids[idx])
}

// outDegree samples the per-entity fact count for a predicate.
func (g *generator) outDegree(avg float64) int {
	n := int(avg)
	if g.rng.Float64() < avg-float64(n) {
		n++
	}
	return n
}

// makeFacts generates the relational facts of the schema.
func (g *generator) makeFacts(preds []predSpec, scale float64) {
	blankSeq := 0
	for _, p := range preds {
		prop := g.prop(p.name)
		for _, dom := range p.domain {
			for si, sIRI := range g.classIDs[dom] {
				// More popular subjects are better described, as in DBpedia,
				// where prominent entities carry dozens of facts while the
				// long tail has a handful. The graded boost keeps head
				// entities summarizable (Table 3 needs ≥ 10 candidate
				// features for the top-10 gold standard to be selective).
				boost := 1.0
				switch n := len(g.classIDs[dom]); {
				case si < n/50+1:
					boost = 8.0
				case si < n/10+1:
					boost = 2.5
				}
				nFacts := g.outDegree(p.avg * boost)
				subject := rdf.NewIRI(sIRI)
				for f := 0; f < nFacts; f++ {
					switch p.kind {
					case toClass:
						o := g.pick(p.rng, p.zipf)
						if o.Value == sIRI {
							continue // no self loops
						}
						g.add(subject, prop, o)
					case toYear:
						year := 1850 + g.rng.Intn(170)
						g.add(subject, prop, rdf.NewLiteral(fmt.Sprintf("%d\"^^<http://www.w3.org/2001/XMLSchema#gYear>", year)))
					case toNumber:
						// Log-uniform magnitudes (populations, revenues).
						mag := int(math.Pow(10, 3+4*g.rng.Float64()))
						g.add(subject, prop, rdf.NewLiteral(fmt.Sprintf("%d", mag)))
					case toBlankStation:
						blankSeq++
						b := rdf.NewBlank(fmt.Sprintf("b%d", blankSeq))
						g.add(subject, prop, b)
						g.add(b, g.prop("of"), g.pick(p.rng, p.zipf))
						year := 1950 + g.rng.Intn(70)
						g.add(b, g.prop("since"), rdf.NewLiteral(fmt.Sprintf("%d", year)))
					}
				}
			}
		}
	}
}
