package datagen

// DBpediaLike generates a DBpedia-shaped dataset: the evaluation classes of
// Section 4.1 (Person, Settlement, Album, Film, Organization) embedded in a
// wider ontology with countries, parties, languages, universities, awards
// and genres, literal attributes, and blank-node career stations.
func DBpediaLike(cfg Config) *Dataset {
	g := newGenerator("dbpedia-like", "http://dbpedia.demo/resource/", "http://dbpedia.demo/ontology/", cfg)
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}

	classes := []classSpec{
		{name: "Person", n: 3000, pop: 1.0, zipf: 1.05},
		{name: "Settlement", n: 1200, pop: 1.2, zipf: 1.0},
		{name: "Country", n: 120, pop: 3.0, zipf: 0.9},
		{name: "Album", n: 800, pop: 0.8, zipf: 1.1},
		{name: "Film", n: 800, pop: 0.9, zipf: 1.1},
		{name: "Organization", n: 600, pop: 0.9, zipf: 1.05},
		{name: "University", n: 200, pop: 1.1, zipf: 0.95},
		{name: "Party", n: 60, pop: 1.4, zipf: 0.9},
		{name: "Language", n: 80, pop: 1.6, zipf: 0.9},
		{name: "LanguageFamily", n: 12, pop: 1.2, zipf: 0.8},
		{name: "Award", n: 80, pop: 1.3, zipf: 1.0},
		{name: "Genre", n: 60, pop: 1.2, zipf: 0.9},
		{name: "Region", n: 200, pop: 1.1, zipf: 0.95},
		{name: "Continent", n: 6, pop: 2.0, zipf: 0.6},
		{name: "Occupation", n: 40, pop: 1.0, zipf: 0.9},
	}
	g.makeClasses(classes, scale)

	preds := []predSpec{
		// People.
		{name: "birthPlace", domain: []string{"Person"}, rng: "Settlement", kind: toClass, avg: 0.9, zipf: 1.0},
		{name: "deathPlace", domain: []string{"Person"}, rng: "Settlement", kind: toClass, avg: 0.45, zipf: 1.0},
		{name: "nationality", domain: []string{"Person"}, rng: "Country", kind: toClass, avg: 0.85, zipf: 0.9},
		{name: "almaMater", domain: []string{"Person"}, rng: "University", kind: toClass, avg: 0.4, zipf: 0.95},
		{name: "party", domain: []string{"Person"}, rng: "Party", kind: toClass, avg: 0.22, zipf: 0.9},
		{name: "award", domain: []string{"Person"}, rng: "Award", kind: toClass, avg: 0.3, zipf: 1.0},
		{name: "spouse", domain: []string{"Person"}, rng: "Person", kind: toClass, avg: 0.2, zipf: 1.05},
		{name: "doctoralAdvisor", domain: []string{"Person"}, rng: "Person", kind: toClass, avg: 0.15, zipf: 1.3},
		{name: "occupation", domain: []string{"Person"}, rng: "Occupation", kind: toClass, avg: 0.8, zipf: 0.9},
		{name: "birthYear", domain: []string{"Person"}, kind: toYear, avg: 0.95},
		{name: "careerStation", domain: []string{"Person"}, rng: "Organization", kind: toBlankStation, avg: 0.12, zipf: 1.0},
		// Settlements.
		{name: "country", domain: []string{"Settlement", "Region", "University"}, rng: "Country", kind: toClass, avg: 1.0, zipf: 0.9},
		{name: "region", domain: []string{"Settlement"}, rng: "Region", kind: toClass, avg: 0.9, zipf: 0.95},
		{name: "mayor", domain: []string{"Settlement"}, rng: "Person", kind: toClass, avg: 0.45, zipf: 1.4},
		{name: "twinCity", domain: []string{"Settlement"}, rng: "Settlement", kind: toClass, avg: 0.35, zipf: 1.0},
		{name: "capital", domain: []string{"Country"}, rng: "Settlement", kind: toClass, avg: 0.95, zipf: 1.3},
		{name: "populationTotal", domain: []string{"Settlement"}, kind: toNumber, avg: 0.9},
		// Music and film.
		{name: "artist", domain: []string{"Album"}, rng: "Person", kind: toClass, avg: 1.0, zipf: 1.2},
		{name: "genre", domain: []string{"Album", "Film"}, rng: "Genre", kind: toClass, avg: 1.1, zipf: 0.9},
		{name: "releaseYear", domain: []string{"Album", "Film"}, kind: toYear, avg: 0.9},
		{name: "director", domain: []string{"Film"}, rng: "Person", kind: toClass, avg: 1.0, zipf: 1.25},
		{name: "starring", domain: []string{"Film"}, rng: "Person", kind: toClass, avg: 2.2, zipf: 1.3},
		{name: "filmCountry", domain: []string{"Film"}, rng: "Country", kind: toClass, avg: 0.8, zipf: 0.9},
		{name: "language", domain: []string{"Film"}, rng: "Language", kind: toClass, avg: 0.85, zipf: 0.9},
		// Organizations.
		{name: "foundedBy", domain: []string{"Organization"}, rng: "Person", kind: toClass, avg: 0.5, zipf: 1.2},
		{name: "headquarter", domain: []string{"Organization"}, rng: "Settlement", kind: toClass, avg: 0.85, zipf: 1.0},
		{name: "keyPerson", domain: []string{"Organization"}, rng: "Person", kind: toClass, avg: 0.5, zipf: 1.25},
		{name: "foundingYear", domain: []string{"Organization", "University"}, kind: toYear, avg: 0.8},
		// Countries and languages.
		{name: "officialLanguage", domain: []string{"Country"}, rng: "Language", kind: toClass, avg: 1.2, zipf: 0.85},
		{name: "languageFamily", domain: []string{"Language"}, rng: "LanguageFamily", kind: toClass, avg: 1.0, zipf: 0.8},
		{name: "continent", domain: []string{"Country"}, rng: "Continent", kind: toClass, avg: 1.0, zipf: 0.6},
		{name: "leaderName", domain: []string{"Country"}, rng: "Person", kind: toClass, avg: 0.8, zipf: 1.3},
		{name: "universityCity", domain: []string{"University"}, rng: "Settlement", kind: toClass, avg: 1.0, zipf: 0.95},
		{name: "partOf", domain: []string{"Region"}, rng: "Country", kind: toClass, avg: 0.95, zipf: 0.9},
	}
	g.makeFacts(preds, scale)
	return g.ds
}

// WikidataLike generates a Wikidata-shaped dataset with the evaluation
// classes of Section 4.1.3 (Company, City, Film, Human) and a sparser
// predicate set than the DBpedia generator (the Wikidata dump the paper
// uses has 752 predicates vs DBpedia's 1951; proportionally fewer here).
func WikidataLike(cfg Config) *Dataset {
	g := newGenerator("wikidata-like", "http://wikidata.demo/entity/", "http://wikidata.demo/prop/", cfg)
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}

	classes := []classSpec{
		{name: "Human", n: 2600, pop: 1.0, zipf: 1.05},
		{name: "City", n: 900, pop: 1.2, zipf: 1.0},
		{name: "Film", n: 800, pop: 0.9, zipf: 1.1},
		{name: "Company", n: 500, pop: 0.9, zipf: 1.05},
		{name: "Country", n: 110, pop: 3.0, zipf: 0.9},
		{name: "Genre", n: 40, pop: 1.2, zipf: 0.9},
		{name: "Occupation", n: 50, pop: 1.0, zipf: 0.9},
		{name: "Award", n: 60, pop: 1.3, zipf: 1.0},
		{name: "Language", n: 60, pop: 1.6, zipf: 0.9},
		{name: "Religion", n: 15, pop: 1.1, zipf: 0.8},
	}
	g.makeClasses(classes, scale)

	preds := []predSpec{
		{name: "placeOfBirth", domain: []string{"Human"}, rng: "City", kind: toClass, avg: 0.9, zipf: 1.0},
		{name: "placeOfDeath", domain: []string{"Human"}, rng: "City", kind: toClass, avg: 0.4, zipf: 1.0},
		{name: "countryOfCitizenship", domain: []string{"Human"}, rng: "Country", kind: toClass, avg: 0.9, zipf: 0.9},
		{name: "occupation", domain: []string{"Human"}, rng: "Occupation", kind: toClass, avg: 0.9, zipf: 0.9},
		{name: "awardReceived", domain: []string{"Human"}, rng: "Award", kind: toClass, avg: 0.3, zipf: 1.0},
		{name: "spouse", domain: []string{"Human"}, rng: "Human", kind: toClass, avg: 0.2, zipf: 1.05},
		{name: "religion", domain: []string{"Human"}, rng: "Religion", kind: toClass, avg: 0.25, zipf: 0.85},
		{name: "dateOfBirth", domain: []string{"Human"}, kind: toYear, avg: 0.95},
		{name: "country", domain: []string{"City", "Company", "Film"}, rng: "Country", kind: toClass, avg: 0.95, zipf: 0.9},
		{name: "capitalOf", domain: []string{"City"}, rng: "Country", kind: toClass, avg: 0.08, zipf: 0.9},
		{name: "headOfGovernment", domain: []string{"City"}, rng: "Human", kind: toClass, avg: 0.4, zipf: 1.35},
		{name: "population", domain: []string{"City"}, kind: toNumber, avg: 0.9},
		{name: "director", domain: []string{"Film"}, rng: "Human", kind: toClass, avg: 1.0, zipf: 1.25},
		{name: "castMember", domain: []string{"Film"}, rng: "Human", kind: toClass, avg: 2.0, zipf: 1.3},
		{name: "genre", domain: []string{"Film"}, rng: "Genre", kind: toClass, avg: 1.0, zipf: 0.9},
		{name: "originalLanguage", domain: []string{"Film"}, rng: "Language", kind: toClass, avg: 0.85, zipf: 0.9},
		{name: "publicationDate", domain: []string{"Film"}, kind: toYear, avg: 0.9},
		{name: "chiefExecutiveOfficer", domain: []string{"Company"}, rng: "Human", kind: toClass, avg: 0.5, zipf: 1.3},
		{name: "headquartersLocation", domain: []string{"Company"}, rng: "City", kind: toClass, avg: 0.85, zipf: 1.0},
		{name: "foundedBy", domain: []string{"Company"}, rng: "Human", kind: toClass, avg: 0.45, zipf: 1.2},
		{name: "inception", domain: []string{"Company"}, kind: toYear, avg: 0.8},
		{name: "officialLanguage", domain: []string{"Country"}, rng: "Language", kind: toClass, avg: 1.1, zipf: 0.85},
		{name: "headOfState", domain: []string{"Country"}, rng: "Human", kind: toClass, avg: 0.8, zipf: 1.3},
	}
	g.makeFacts(preds, scale)
	return g.ds
}
