// Package bindset is the adaptive binding-set engine behind REMI's set
// algebra. Every node of the Algorithm 1 DFS intersects the prefix's binding
// set with a candidate's, so the physical representation of these sets
// dominates the mining hot path. A Set keeps one of two representations,
// chosen automatically by density against the KB's entity universe:
//
//   - sparse: an ascending []kb.EntID slice (cheap for small sets, which is
//     the common case deep in the search tree);
//   - dense: a bitseq-backed bitmap with a cached popcount (cheap for the
//     large binding sets of frequent atoms near the queue head, where a
//     slice merge would touch hundreds of thousands of elements and a
//     word-wise AND touches one 64th of that).
//
// All binary operations work across representation pairs. The *Into variants
// write into caller-owned scratch sets, letting the DFS run allocation-free
// in steady state (see internal/core).
package bindset

import (
	"sort"

	"github.com/remi-kb/remi/internal/bitseq"
	"github.com/remi-kb/remi/internal/kb"
)

// denseFraction sets the representation threshold: a set switches to the
// bitmap once it holds more than universe/denseFraction elements, i.e. at a
// density of 1/16. At that point the bitmap (universe/8 bytes) costs at most
// twice the slice's 4·card bytes while intersections drop from O(card) merge
// steps to O(universe/64) word ANDs — a win for every denser set.
const denseFraction = 16

// GallopRatio is the slice/slice skew beyond which set operations gallop
// (exponential search in the larger side) instead of merging linearly. It
// is exported so every sorted-slice probe in the engine (here and in
// internal/expr's HoldsFor paths) shares one tuning constant.
const GallopRatio = 16

// Set is a set of entity ids drawn from a universe of kb.NumEntities()
// entities (ids are 1-based). Sets built by From* or the allocating
// operations are immutable by convention and may share storage (with the KB
// or the evaluator cache): callers must not mutate what Slice returns. Only
// the *Into operations mutate their receiver, which must therefore own its
// buffers and must not alias an operand.
type Set struct {
	universe int
	card     int
	dense    bool
	sorted   []kb.EntID // live representation when !dense
	words    []uint64   // live representation when dense
}

// wordsLen returns the bitmap length for a universe of n 1-based ids.
func wordsLen(n int) int { return (n + 63) / 64 }

// isDenseCard reports whether a set of the given cardinality should use the
// bitmap representation.
func isDenseCard(card, universe int) bool {
	return universe > 0 && card*denseFraction >= universe
}

// FromSorted wraps an ascending, duplicate-free id slice as a Set, choosing
// the representation by density. The slice is retained when the sparse
// representation is kept, so it must stay unmodified for the life of the Set
// (KB-owned and evaluator-cached slices qualify).
func FromSorted(ids []kb.EntID, universe int) Set {
	if !isDenseCard(len(ids), universe) {
		return Set{universe: universe, card: len(ids), sorted: ids}
	}
	s := Set{universe: universe, card: len(ids), dense: true, words: make([]uint64, wordsLen(universe))}
	for _, e := range ids {
		s.words[(e-1)/64] |= 1 << (uint(e-1) % 64)
	}
	return s
}

// Universe returns the entity-universe size the set was built against.
func (s Set) Universe() int { return s.universe }

// Card returns the number of elements (O(1) for both representations).
func (s Set) Card() int { return s.card }

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool { return s.card == 0 }

// Dense reports whether the set currently uses the bitmap representation.
func (s Set) Dense() bool { return s.dense }

// Contains reports whether e is in the set.
func (s Set) Contains(e kb.EntID) bool {
	if s.dense {
		i := int(e) - 1
		if i < 0 || i >= s.universe {
			return false
		}
		return s.words[i/64]&(1<<(uint(i)%64)) != 0
	}
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] >= e })
	return i < len(s.sorted) && s.sorted[i] == e
}

// Iterate calls fn with every element in ascending order, stopping early
// when fn returns false.
func (s Set) Iterate(fn func(kb.EntID) bool) {
	if s.dense {
		bitseq.IterateOnes(s.words, func(i int) bool { return fn(kb.EntID(i + 1)) })
		return
	}
	for _, e := range s.sorted {
		if !fn(e) {
			return
		}
	}
}

// Slice returns the elements as an ascending slice. For sparse sets this is
// the internal (possibly shared) slice — callers must not modify it; dense
// sets are materialized into a fresh slice.
func (s Set) Slice() []kb.EntID {
	if !s.dense {
		return s.sorted
	}
	return s.AppendTo(make([]kb.EntID, 0, s.card))
}

// AppendTo appends the elements in ascending order to dst and returns it.
func (s Set) AppendTo(dst []kb.EntID) []kb.EntID {
	s.Iterate(func(e kb.EntID) bool { dst = append(dst, e); return true })
	return dst
}

// EqualSorted reports whether the set holds exactly the ids of the ascending,
// duplicate-free slice.
func (s Set) EqualSorted(ids []kb.EntID) bool {
	if s.card != len(ids) {
		return false
	}
	if !s.dense {
		for i, e := range s.sorted {
			if ids[i] != e {
				return false
			}
		}
		return true
	}
	for _, e := range ids {
		if !s.Contains(e) {
			return false
		}
	}
	return true
}

// Equal reports whether two sets hold the same elements, whatever their
// representations.
func Equal(a, b Set) bool {
	if a.card != b.card {
		return false
	}
	if a.dense && b.dense {
		for i := range a.words {
			if a.words[i] != b.words[i] {
				return false
			}
		}
		return true
	}
	if !a.dense {
		return b.EqualSorted(a.sorted)
	}
	return a.EqualSorted(b.sorted)
}

// Intersect returns a ∩ b in a freshly allocated set.
func Intersect(a, b Set) Set {
	var dst Set
	dst.IntersectInto(a, b)
	return dst
}

// IntersectInto computes a ∩ b into dst, reusing dst's buffers. dst must own
// its storage (zero value or the result of a previous *Into call) and must
// not alias a or b. The result is sparse whenever either operand is sparse
// (the intersection can only shrink below the operand's density) and demotes
// a dense ∩ dense result that falls under the density threshold, so the
// adaptive invariant holds after every operation.
func (dst *Set) IntersectInto(a, b Set) {
	dst.universe = a.universe
	switch {
	case a.dense && b.dense:
		n := len(a.words)
		if cap(dst.words) < n {
			dst.words = make([]uint64, n)
		}
		dst.words = dst.words[:n]
		dst.card = bitseq.AndWords(dst.words, a.words, b.words)
		dst.dense = true
		if !isDenseCard(dst.card, dst.universe) {
			dst.demote()
		}
	case a.dense: // b sparse: filter b through a's bitmap
		dst.filterInto(b.sorted, a)
	case b.dense:
		dst.filterInto(a.sorted, b)
	default:
		// Bound the result by the smaller operand so a cold buffer is sized
		// in one allocation instead of append-growth; a warm scratch buffer
		// is simply reused.
		bound := len(a.sorted)
		if len(b.sorted) < bound {
			bound = len(b.sorted)
		}
		if cap(dst.sorted) < bound {
			dst.sorted = make([]kb.EntID, 0, bound)
		}
		dst.sorted = intersectSortedInto(dst.sorted[:0], a.sorted, b.sorted)
		dst.card = len(dst.sorted)
		dst.dense = false
	}
}

// batchMax bounds the number of candidate sets handled per word-at-a-time
// pass of IntersectMany; larger inputs are chunked. Eight keeps the per-pass
// pointer tables in registers/stack while amortizing the prefix-set loads.
const batchMax = 8

// IntersectMany computes a ∩ bs[j] into dsts[j] for every j — the batch
// intersection kernel of the DFS child loop and the solvable-suffix sweep:
// one prefix set intersected against many candidate sets. Results are
// bit-identical to calling dsts[j].IntersectInto(a, bs[j]) in a loop
// (including the representation invariants), but when the prefix is a
// bitmap, runs of bitmap candidates are ANDed word-at-a-time
// (bitseq.AndWordsMany): each prefix word is loaded once per batch instead
// of once per candidate. Each dsts[j] must own its buffers and must not
// alias a or any element of bs.
func IntersectMany(dsts []*Set, a Set, bs []Set) {
	if !a.dense {
		for j := range bs {
			dsts[j].IntersectInto(a, bs[j])
		}
		return
	}
	n := len(a.words)
	for start := 0; start < len(bs); start += batchMax {
		end := start + batchMax
		if end > len(bs) {
			end = len(bs)
		}
		var dw, bw [batchMax][]uint64
		var idx [batchMax]int
		var cards [batchMax]int
		dense := 0
		for j := start; j < end; j++ {
			if !bs[j].dense {
				dsts[j].IntersectInto(a, bs[j])
				continue
			}
			d := dsts[j]
			if cap(d.words) < n {
				d.words = make([]uint64, n)
			}
			d.words = d.words[:n]
			dw[dense], bw[dense], idx[dense] = d.words, bs[j].words, j
			dense++
		}
		if dense == 0 {
			continue
		}
		bitseq.AndWordsMany(dw[:dense], a.words, bw[:dense], cards[:dense])
		for t := 0; t < dense; t++ {
			d := dsts[idx[t]]
			d.universe = a.universe
			d.card = cards[t]
			d.dense = true
			if !isDenseCard(d.card, d.universe) {
				d.demote()
			}
		}
	}
}

// filterInto keeps the ids of sorted that are set in the dense set d.
func (dst *Set) filterInto(sorted []kb.EntID, d Set) {
	if cap(dst.sorted) < len(sorted) {
		n := len(sorted)
		if d.card < n {
			n = d.card
		}
		if cap(dst.sorted) < n {
			dst.sorted = make([]kb.EntID, 0, n)
		}
	}
	out := dst.sorted[:0]
	for _, e := range sorted {
		if d.words[(e-1)/64]&(1<<(uint(e-1)%64)) != 0 {
			out = append(out, e)
		}
	}
	dst.sorted = out
	dst.card = len(out)
	dst.dense = false
}

// demote converts a dense dst to the sparse representation in place, reusing
// the sorted buffer when it is large enough (the cardinality is known, so at
// most one exact-size allocation happens).
func (dst *Set) demote() {
	if cap(dst.sorted) < dst.card {
		dst.sorted = make([]kb.EntID, 0, dst.card)
	}
	out := dst.sorted[:0]
	bitseq.IterateOnes(dst.words, func(i int) bool {
		out = append(out, kb.EntID(i+1))
		return true
	})
	dst.sorted = out
	dst.dense = false
}

// Union returns a ∪ b in a freshly allocated set.
func Union(a, b Set) Set {
	universe := a.universe
	if a.dense || b.dense {
		out := Set{universe: universe, dense: true, words: make([]uint64, wordsLen(universe))}
		fill := func(s Set) {
			if s.dense {
				out.card = bitseq.OrWords(out.words, out.words, s.words)
				return
			}
			for _, e := range s.sorted {
				out.words[(e-1)/64] |= 1 << (uint(e-1) % 64)
			}
			out.card = bitseq.PopCount(out.words)
		}
		fill(a)
		fill(b)
		if !isDenseCard(out.card, universe) {
			out.demote()
		}
		return out
	}
	merged := mergeUnion(make([]kb.EntID, 0, len(a.sorted)+len(b.sorted)), a.sorted, b.sorted)
	return FromSorted(merged, universe)
}

// UnionSlices returns the union of several ascending, duplicate-free id
// slices as a Set: a bitmap accumulation when the combined input is within a
// factor of the universe's word count (one bit-set per element beats any
// comparison-based merge there), and a k-way heap merge otherwise —
// replacing the previous concat-and-sort, which cost O(n log n) comparisons
// on inputs that are already sorted.
func UnionSlices(sets [][]kb.EntID, universe int) Set {
	total := 0
	nonEmpty := 0
	for _, s := range sets {
		total += len(s)
		if len(s) > 0 {
			nonEmpty++
		}
	}
	switch nonEmpty {
	case 0:
		return Set{universe: universe}
	case 1:
		for _, s := range sets {
			if len(s) > 0 {
				return FromSorted(s, universe)
			}
		}
	}
	if total >= wordsLen(universe) {
		out := Set{universe: universe, dense: true, words: make([]uint64, wordsLen(universe))}
		for _, s := range sets {
			for _, e := range s {
				out.words[(e-1)/64] |= 1 << (uint(e-1) % 64)
			}
		}
		out.card = bitseq.PopCount(out.words)
		if !isDenseCard(out.card, universe) {
			out.demote()
		}
		return out
	}
	if nonEmpty == 2 {
		var ab [2][]kb.EntID
		i := 0
		for _, s := range sets {
			if len(s) > 0 {
				ab[i] = s
				i++
			}
		}
		return FromSorted(mergeUnion(make([]kb.EntID, 0, total), ab[0], ab[1]), universe)
	}
	return FromSorted(kwayUnion(make([]kb.EntID, 0, total), sets), universe)
}

// intersectSortedInto appends a ∩ b to dst. When the inputs are heavily
// skewed it gallops: each element of the small side is located in the large
// side by exponential search from a moving cursor, for O(small · log(large/
// small)) instead of O(small + large).
func intersectSortedInto(dst []kb.EntID, a, b []kb.EntID) []kb.EntID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= GallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j += Gallop(b[j:], x)
			if j >= len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// Gallop returns the first index i of the ascending slice b with b[i] >= x,
// probing exponentially before binary-searching the final window. It is the
// shared building block of every skewed sorted-slice operation in the
// engine.
func Gallop(b []kb.EntID, x kb.EntID) int {
	if len(b) == 0 || b[0] >= x {
		return 0
	}
	lo, hi := 0, 1
	for hi < len(b) && b[hi] < x {
		lo = hi
		hi *= 2
	}
	if hi > len(b) {
		hi = len(b)
	}
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return b[lo+1+i] >= x })
}

// mergeUnion appends the two-way sorted union (deduplicated) to dst.
func mergeUnion(dst []kb.EntID, a, b []kb.EntID) []kb.EntID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// kwayUnion appends the deduplicated union of many ascending slices to dst
// using a binary min-heap of per-slice cursors.
func kwayUnion(dst []kb.EntID, sets [][]kb.EntID) []kb.EntID {
	type cursor struct {
		val kb.EntID
		si  int // index into sets
		idx int // next position within sets[si]
	}
	h := make([]cursor, 0, len(sets))
	for si, s := range sets {
		if len(s) > 0 {
			h = append(h, cursor{val: s[0], si: si, idx: 1})
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(h) && h[l].val < h[min].val {
				min = l
			}
			if r < len(h) && h[r].val < h[min].val {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		top := h[0]
		if len(dst) == 0 || dst[len(dst)-1] != top.val {
			dst = append(dst, top.val)
		}
		if s := sets[top.si]; top.idx < len(s) {
			h[0].val = s[top.idx]
			h[0].idx++
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	return dst
}
