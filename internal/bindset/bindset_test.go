package bindset

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/remi-kb/remi/internal/kb"
)

// asSparse and asDense force a representation regardless of density, so every
// test can exercise all four representation pairs of each operation.
func asSparse(ids []kb.EntID, universe int) Set {
	return Set{universe: universe, card: len(ids), sorted: ids}
}

func asDense(ids []kb.EntID, universe int) Set {
	s := Set{universe: universe, card: len(ids), dense: true, words: make([]uint64, wordsLen(universe))}
	for _, e := range ids {
		s.words[(e-1)/64] |= 1 << (uint(e-1) % 64)
	}
	return s
}

func randomIDs(rng *rand.Rand, universe, n int) []kb.EntID {
	seen := make(map[kb.EntID]bool, n)
	for len(seen) < n {
		seen[kb.EntID(rng.Intn(universe)+1)] = true
	}
	out := make([]kb.EntID, 0, n)
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func refIntersect(a, b []kb.EntID) []kb.EntID {
	in := make(map[kb.EntID]bool, len(a))
	for _, e := range a {
		in[e] = true
	}
	var out []kb.EntID
	for _, e := range b {
		if in[e] {
			out = append(out, e)
		}
	}
	return out
}

func refUnion(sets ...[]kb.EntID) []kb.EntID {
	in := make(map[kb.EntID]bool)
	for _, s := range sets {
		for _, e := range s {
			in[e] = true
		}
	}
	out := make([]kb.EntID, 0, len(in))
	for e := range in {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sliceEq(a, b []kb.EntID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reps returns both representations of the same logical set.
func reps(ids []kb.EntID, universe int) []Set {
	return []Set{asSparse(ids, universe), asDense(ids, universe)}
}

func TestAdaptiveRepresentation(t *testing.T) {
	universe := 1 << 12
	sparse := FromSorted(randomIDs(rand.New(rand.NewSource(1)), universe, universe/denseFraction/4), universe)
	if sparse.Dense() {
		t.Fatal("low-density set picked the bitmap representation")
	}
	dense := FromSorted(randomIDs(rand.New(rand.NewSource(2)), universe, universe/2), universe)
	if !dense.Dense() {
		t.Fatal("high-density set kept the slice representation")
	}
	if dense.Card() != universe/2 {
		t.Fatalf("dense Card = %d, want %d", dense.Card(), universe/2)
	}
}

// TestRepresentationEquivalence is the core property test of the ISSUE:
// Intersect, Union, Card, Equal, Contains and iteration agree between the
// slice and bitmap representations on random sets of varied density.
func TestRepresentationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		universe := 64 + rng.Intn(2048)
		na := rng.Intn(universe/2 + 1)
		nb := rng.Intn(universe/2 + 1)
		if round%5 == 0 {
			nb = rng.Intn(universe/64 + 1) // heavily skewed: exercises galloping
		}
		a := randomIDs(rng, universe, na)
		b := randomIDs(rng, universe, nb)
		wantI := refIntersect(a, b)
		wantU := refUnion(a, b)

		for _, sa := range reps(a, universe) {
			for _, sb := range reps(b, universe) {
				got := Intersect(sa, sb)
				if !sliceEq(got.Slice(), wantI) {
					t.Fatalf("round %d: Intersect(dense=%v,%v) = %v, want %v", round, sa.Dense(), sb.Dense(), got.Slice(), wantI)
				}
				if got.Card() != len(wantI) {
					t.Fatalf("round %d: Card = %d, want %d", round, got.Card(), len(wantI))
				}
				if !got.EqualSorted(wantI) {
					t.Fatalf("round %d: EqualSorted disagrees with Slice", round)
				}
				u := Union(sa, sb)
				if !sliceEq(u.Slice(), wantU) {
					t.Fatalf("round %d: Union(dense=%v,%v) = %v, want %v", round, sa.Dense(), sb.Dense(), u.Slice(), wantU)
				}
				if !Equal(sa, reps(a, universe)[1]) || !Equal(sa, reps(a, universe)[0]) {
					t.Fatalf("round %d: Equal across representations failed", round)
				}
				if Equal(sa, sb) != sliceEq(a, b) {
					t.Fatalf("round %d: Equal(%v, %v) wrong", round, a, b)
				}
			}
		}

		// Contains and iteration order.
		for _, s := range reps(a, universe) {
			var collected []kb.EntID
			s.Iterate(func(e kb.EntID) bool { collected = append(collected, e); return true })
			if !sliceEq(collected, a) {
				t.Fatalf("round %d: Iterate = %v, want %v", round, collected, a)
			}
			for _, e := range b {
				inA := false
				for _, x := range a {
					if x == e {
						inA = true
						break
					}
				}
				if s.Contains(e) != inA {
					t.Fatalf("round %d: Contains(%d) = %v, want %v", round, e, s.Contains(e), inA)
				}
			}
		}
	}
}

func TestUnionSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		universe := 64 + rng.Intn(4096)
		k := rng.Intn(8)
		sets := make([][]kb.EntID, k)
		for i := range sets {
			sets[i] = randomIDs(rng, universe, rng.Intn(universe/4+1))
		}
		want := refUnion(sets...)
		got := UnionSlices(sets, universe)
		if !sliceEq(got.Slice(), want) {
			t.Fatalf("round %d: UnionSlices = %v, want %v", round, got.Slice(), want)
		}
		if got.Card() != len(want) {
			t.Fatalf("round %d: Card = %d, want %d", round, got.Card(), len(want))
		}
	}
	// Degenerate inputs.
	if s := UnionSlices(nil, 100); s.Card() != 0 || s.Dense() {
		t.Fatal("empty UnionSlices not the empty sparse set")
	}
	one := []kb.EntID{3, 9}
	if s := UnionSlices([][]kb.EntID{nil, one, nil}, 1000); !sliceEq(s.Slice(), one) {
		t.Fatal("single-input UnionSlices wrong")
	}
}

// TestIntersectIntoScratchReuse checks the allocation-free discipline: after
// warm-up, repeated IntersectInto calls into the same scratch set do not
// allocate, across every representation pair.
func TestIntersectIntoScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := 4096
	a := randomIDs(rng, universe, 2000)
	b := randomIDs(rng, universe, 1800)
	want := refIntersect(a, b)
	for _, sa := range reps(a, universe) {
		for _, sb := range reps(b, universe) {
			var dst Set
			dst.IntersectInto(sa, sb) // warm-up sizes the buffers
			allocs := testing.AllocsPerRun(50, func() {
				dst.IntersectInto(sa, sb)
			})
			if allocs != 0 {
				t.Errorf("IntersectInto(dense=%v,%v) allocates %.1f/op after warm-up", sa.Dense(), sb.Dense(), allocs)
			}
			if !dst.EqualSorted(want) {
				t.Errorf("IntersectInto(dense=%v,%v) wrong result", sa.Dense(), sb.Dense())
			}
		}
	}
}

// TestDenseIntersectDemotes checks the adaptive invariant: a dense ∩ dense
// result below the density threshold converts back to the slice form.
func TestDenseIntersectDemotes(t *testing.T) {
	universe := 1 << 14
	rng := rand.New(rand.NewSource(3))
	a := randomIDs(rng, universe, universe/4)
	b := randomIDs(rng, universe, universe/4)
	// Make the overlap tiny: shift b into a mostly disjoint range.
	for i := range b {
		b[i] = kb.EntID((int(b[i])+universe/2-1)%universe + 1)
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	w := 0
	for i, e := range b {
		if i == 0 || e != b[w-1] {
			b[w] = e
			w++
		}
	}
	b = b[:w]
	got := Intersect(asDense(a, universe), asDense(b, universe))
	if !got.EqualSorted(refIntersect(a, b)) {
		t.Fatal("dense∩dense wrong")
	}
	if isDense := got.Dense(); isDense != isDenseCard(got.Card(), universe) {
		t.Fatalf("result density %v inconsistent with threshold for card %d", isDense, got.Card())
	}
}

func TestGallop(t *testing.T) {
	b := []kb.EntID{2, 4, 6, 8, 10, 12, 14, 16}
	for _, tc := range []struct {
		x    kb.EntID
		want int
	}{{1, 0}, {2, 0}, {3, 1}, {8, 3}, {15, 7}, {16, 7}, {17, 8}} {
		if got := Gallop(b, tc.x); got != tc.want {
			t.Errorf("Gallop(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

// FuzzSetAlgebra feeds arbitrary byte strings as two id sets and checks the
// slice-vs-bitmap equivalence of Intersect, Union, Card and Equal.
func FuzzSetAlgebra(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{255, 0, 17})
	f.Add([]byte{9, 9, 9, 1}, []byte{9})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		const universe = 256
		decode := func(raw []byte) []kb.EntID {
			seen := make(map[kb.EntID]bool)
			for _, c := range raw {
				seen[kb.EntID(int(c)%universe+1)] = true
			}
			out := make([]kb.EntID, 0, len(seen))
			for e := range seen {
				out = append(out, e)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := decode(rawA), decode(rawB)
		wantI, wantU := refIntersect(a, b), refUnion(a, b)
		for _, sa := range reps(a, universe) {
			for _, sb := range reps(b, universe) {
				if got := Intersect(sa, sb); !sliceEq(got.Slice(), wantI) {
					t.Fatalf("Intersect(dense=%v,%v) = %v, want %v", sa.Dense(), sb.Dense(), got.Slice(), wantI)
				}
				if got := Union(sa, sb); !sliceEq(got.Slice(), wantU) {
					t.Fatalf("Union(dense=%v,%v) = %v, want %v", sa.Dense(), sb.Dense(), got.Slice(), wantU)
				}
				if Equal(sa, sb) != sliceEq(a, b) {
					t.Fatal("Equal disagrees with reference")
				}
			}
		}
	})
}

// TestIntersectManyMatchesIntersectInto asserts the batch kernel is
// bit-identical to the pairwise loop it replaces, across representation
// mixes, batch sizes spanning the chunk boundary, and scratch reuse.
func TestIntersectManyMatchesIntersectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 60; round++ {
		universe := 64 + rng.Intn(1000)
		aIDs := randomIDs(rng, universe, rng.Intn(universe))
		var a Set
		if round%2 == 0 {
			a = asDense(aIDs, universe)
		} else {
			a = asSparse(aIDs, universe)
		}
		n := 1 + rng.Intn(2*batchMax+3) // cross the batchMax chunking boundary
		bs := make([]Set, n)
		for j := range bs {
			ids := randomIDs(rng, universe, rng.Intn(universe))
			if rng.Intn(2) == 0 {
				bs[j] = asDense(ids, universe)
			} else {
				bs[j] = asSparse(ids, universe)
			}
		}
		dsts := make([]*Set, n)
		for j := range dsts {
			dsts[j] = new(Set)
		}
		// Reuse across two passes to cover warm-scratch behavior.
		for pass := 0; pass < 2; pass++ {
			IntersectMany(dsts, a, bs)
			for j := range bs {
				var want Set
				want.IntersectInto(a, bs[j])
				if !Equal(*dsts[j], want) {
					t.Fatalf("round %d pass %d: IntersectMany[%d] diverges (card %d vs %d)",
						round, pass, j, dsts[j].Card(), want.Card())
				}
				if dsts[j].Dense() != want.Dense() {
					t.Fatalf("round %d: representation invariant broken at %d", round, j)
				}
			}
		}
	}
}
