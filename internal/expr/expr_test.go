package expr

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/remi-kb/remi/internal/bindset"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// buildKB constructs a small KB from (s, p, o) string triples.
func buildKB(t testing.TB, triples [][3]string) *kb.KB {
	t.Helper()
	b := kb.NewBuilder()
	for _, tr := range triples {
		err := b.Add(rdf.Triple{
			S: rdf.NewIRI("http://e/" + tr[0]),
			P: rdf.NewIRI("http://e/" + tr[1]),
			O: rdf.NewIRI("http://e/" + tr[2]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(kb.Options{})
}

func geoKB(t testing.TB) *kb.KB {
	return buildKB(t, [][3]string{
		{"paris", "cityIn", "france"},
		{"lyon", "cityIn", "france"},
		{"berlin", "cityIn", "germany"},
		{"france", "capital", "paris"},
		{"germany", "capital", "berlin"},
		{"france", "officialLanguage", "french"},
		{"germany", "officialLanguage", "german"},
		{"french", "langFamily", "romance"},
		{"german", "langFamily", "germanic"},
		{"paris", "placeOf", "eiffel"},
		{"paris", "largestCityOf", "france"},
		{"berlin", "largestCityOf", "germany"},
		{"paris", "mayor", "hidalgo"},
		{"hidalgo", "party", "socialist"},
		{"lyon", "mayor", "doucet"},
		{"doucet", "party", "green"},
	})
}

func TestShapesMetadata(t *testing.T) {
	cases := []struct {
		shape Shape
		atoms int
		vars  int
	}{
		{Atom1, 1, 0}, {Path, 2, 1}, {PathStar, 3, 1}, {Closed2, 2, 1}, {Closed3, 3, 1},
	}
	for _, c := range cases {
		if c.shape.Atoms() != c.atoms {
			t.Errorf("%v atoms = %d want %d", c.shape, c.shape.Atoms(), c.atoms)
		}
		if c.shape.ExtraVariables() != c.vars {
			t.Errorf("%v vars = %d want %d", c.shape, c.shape.ExtraVariables(), c.vars)
		}
	}
}

func TestCanonicalization(t *testing.T) {
	a := NewPathStar(1, 3, 10, 2, 20)
	b := NewPathStar(1, 2, 20, 3, 10)
	if a != b {
		t.Fatal("path+star canonicalization failed")
	}
	if NewClosed2(5, 2) != NewClosed2(2, 5) {
		t.Fatal("closed2 canonicalization failed")
	}
	if NewClosed3(3, 1, 2) != NewClosed3(1, 2, 3) || NewClosed3(2, 3, 1) != NewClosed3(1, 2, 3) {
		t.Fatal("closed3 canonicalization failed")
	}
}

func TestCanonicalizationProperty(t *testing.T) {
	f := func(p0, p1, p2 uint16) bool {
		a, b, c := kb.PredID(p0)+1, kb.PredID(p1)+1, kb.PredID(p2)+1
		g := NewClosed3(a, b, c)
		return g == NewClosed3(c, b, a) && g == NewClosed3(b, a, c) &&
			g.P0 <= g.P1 && g.P1 <= g.P2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtom1Eval(t *testing.T) {
	k := geoKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	france := k.MustEntityID("http://e/france")
	g := NewAtom1(cityIn, france)

	got := Bindings(k, g)
	if len(got) != 2 {
		t.Fatalf("bindings = %v", got)
	}
	paris := k.MustEntityID("http://e/paris")
	berlin := k.MustEntityID("http://e/berlin")
	if !HoldsFor(k, g, paris) {
		t.Fatal("paris should match cityIn(x, france)")
	}
	if HoldsFor(k, g, berlin) {
		t.Fatal("berlin should not match cityIn(x, france)")
	}
}

func TestPathEval(t *testing.T) {
	k := geoKB(t)
	mayor := k.MustPredicateID("http://e/mayor")
	party := k.MustPredicateID("http://e/party")
	socialist := k.MustEntityID("http://e/socialist")
	g := NewPath(mayor, party, socialist)

	got := Bindings(k, g)
	paris := k.MustEntityID("http://e/paris")
	if len(got) != 1 || got[0] != paris {
		t.Fatalf("bindings = %v want [paris]", got)
	}
	if !HoldsFor(k, g, paris) {
		t.Fatal("HoldsFor disagrees with Bindings")
	}
	lyon := k.MustEntityID("http://e/lyon")
	if HoldsFor(k, g, lyon) {
		t.Fatal("lyon's mayor is green, not socialist")
	}
}

func TestPathStarEval(t *testing.T) {
	k := geoKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	capital := k.MustPredicateID("http://e/capital")
	offLang := k.MustPredicateID("http://e/officialLanguage")
	paris := k.MustEntityID("http://e/paris")
	french := k.MustEntityID("http://e/french")
	// cityIn(x,y) ∧ capital(y, paris) ∧ officialLanguage(y, french):
	// y must be france; x ∈ {paris, lyon}.
	g := NewPathStar(cityIn, capital, paris, offLang, french)
	got := Bindings(k, g)
	if len(got) != 2 {
		t.Fatalf("bindings = %v", got)
	}
	lyon := k.MustEntityID("http://e/lyon")
	if !HoldsFor(k, g, lyon) || !HoldsFor(k, g, paris) {
		t.Fatal("HoldsFor disagrees")
	}
}

func TestClosed2Eval(t *testing.T) {
	k := geoKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	largest := k.MustPredicateID("http://e/largestCityOf")
	g := NewClosed2(cityIn, largest)
	// paris: cityIn france & largestCityOf france → match.
	// berlin: cityIn germany & largestCityOf germany → match.
	// lyon: cityIn france but not largest → no.
	got := Bindings(k, g)
	if len(got) != 2 {
		t.Fatalf("bindings = %v", got)
	}
	lyon := k.MustEntityID("http://e/lyon")
	if HoldsFor(k, g, lyon) {
		t.Fatal("lyon should not match")
	}
}

func TestClosed3Eval(t *testing.T) {
	k := buildKB(t, [][3]string{
		{"a", "p", "v"}, {"a", "q", "v"}, {"a", "r", "v"},
		{"b", "p", "v"}, {"b", "q", "v"},
		{"c", "p", "w"}, {"c", "q", "w"}, {"c", "r", "u"},
	})
	p := k.MustPredicateID("http://e/p")
	q := k.MustPredicateID("http://e/q")
	r := k.MustPredicateID("http://e/r")
	g := NewClosed3(p, q, r)
	got := Bindings(k, g)
	a := k.MustEntityID("http://e/a")
	if len(got) != 1 || got[0] != a {
		t.Fatalf("bindings = %v want [a]", got)
	}
}

// TestHoldsForMatchesBindings is the agreement property between the two
// evaluation paths on randomized KBs.
func TestHoldsForMatchesBindings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	preds := []string{"p", "q", "r"}
	for round := 0; round < 30; round++ {
		var triples [][3]string
		for i := 0; i < 40; i++ {
			triples = append(triples, [3]string{
				names[rng.Intn(len(names))], preds[rng.Intn(len(preds))], names[rng.Intn(len(names))],
			})
		}
		k := buildKB(t, triples)
		var subgraphs []Subgraph
		for pi := 1; pi <= k.NumPredicates(); pi++ {
			for ei := 1; ei <= k.NumEntities(); ei++ {
				subgraphs = append(subgraphs, NewAtom1(kb.PredID(pi), kb.EntID(ei)))
				for pj := 1; pj <= k.NumPredicates(); pj++ {
					subgraphs = append(subgraphs, NewPath(kb.PredID(pi), kb.PredID(pj), kb.EntID(ei)))
				}
			}
			for pj := pi + 1; pj <= k.NumPredicates(); pj++ {
				subgraphs = append(subgraphs, NewClosed2(kb.PredID(pi), kb.PredID(pj)))
			}
		}
		for _, g := range subgraphs {
			set := Bindings(k, g)
			inSet := make(map[kb.EntID]bool, len(set))
			for _, x := range set {
				inSet[x] = true
			}
			for e := 1; e <= k.NumEntities(); e++ {
				id := kb.EntID(e)
				if HoldsFor(k, g, id) != inSet[id] {
					t.Fatalf("round %d: HoldsFor(%v, %d) = %v disagrees with Bindings %v",
						round, g, id, !inSet[id], set)
				}
			}
			// Bindings must be sorted and unique.
			for i := 1; i < len(set); i++ {
				if set[i-1] >= set[i] {
					t.Fatalf("bindings not sorted/unique: %v", set)
				}
			}
		}
	}
}

func TestEvaluatorCaching(t *testing.T) {
	k := geoKB(t)
	ev := NewEvaluator(k, 128)
	cityIn := k.MustPredicateID("http://e/cityIn")
	france := k.MustEntityID("http://e/france")
	g := NewAtom1(cityIn, france)
	a := ev.Bindings(g)
	b := ev.Bindings(g)
	if !bindset.Equal(a, b) {
		t.Fatal("second call returned a different binding set")
	}
	evals, hits, misses := ev.Stats()
	if evals != 2 || hits != 1 || misses != 1 {
		t.Fatalf("stats = %d %d %d", evals, hits, misses)
	}
	if ev.Computes() != 1 {
		t.Fatalf("computes = %d, want 1 (second call must reuse the cache)", ev.Computes())
	}
}

// TestBindingsCoalescing: concurrent misses on one subgraph expression must
// share a single evaluation — the P-REMI workers all hammer the evaluator
// with the same queue-head subgraphs on a cold cache, and the fix for the
// duplicated work is per-key coalescing (plus a stat-free double check), so
// exactly one computation may run no matter the interleaving.
func TestBindingsCoalescing(t *testing.T) {
	k := geoKB(t)
	ev := NewEvaluator(k, 128)
	ev.EnableCoalescing()
	cityIn := k.MustPredicateID("http://e/cityIn")
	france := k.MustEntityID("http://e/france")
	g := NewAtom1(cityIn, france)
	want := BindingSet(k, g)

	const workers = 32
	var wg sync.WaitGroup
	results := make([]bindset.Set, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			results[w] = ev.Bindings(g)
		}(w)
	}
	close(start)
	wg.Wait()
	for w, got := range results {
		if !bindset.Equal(got, want) {
			t.Fatalf("worker %d got a wrong binding set", w)
		}
	}
	if got := ev.Computes(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1 for %d concurrent requests", got, workers)
	}
	evals, hits, misses := ev.Stats()
	if evals != workers {
		t.Fatalf("evals = %d, want %d", evals, workers)
	}
	if hits+misses != workers {
		t.Fatalf("hits(%d)+misses(%d) != %d requests: cache stats drifted", hits, misses, workers)
	}
}

func TestExpressionBindingsAndIsRE(t *testing.T) {
	k := geoKB(t)
	ev := NewEvaluator(k, 128)
	cityIn := k.MustPredicateID("http://e/cityIn")
	mayor := k.MustPredicateID("http://e/mayor")
	party := k.MustPredicateID("http://e/party")
	france := k.MustEntityID("http://e/france")
	socialist := k.MustEntityID("http://e/socialist")
	paris := k.MustEntityID("http://e/paris")

	e := Expression{NewAtom1(cityIn, france), NewPath(mayor, party, socialist)}
	got := ev.ExpressionBindings(e).Slice()
	if len(got) != 1 || got[0] != paris {
		t.Fatalf("expression bindings = %v", got)
	}
	if !ev.IsRE(e, []kb.EntID{paris}) {
		t.Fatal("expression should be an RE for paris")
	}
	lyon := k.MustEntityID("http://e/lyon")
	if ev.IsRE(e, []kb.EntID{paris, lyon}) {
		t.Fatal("expression is not an RE for {paris, lyon}")
	}
	if ev.IsRE(nil, []kb.EntID{paris}) {
		t.Fatal("empty expression cannot be an RE")
	}
}

func TestFormat(t *testing.T) {
	k := geoKB(t)
	cityIn := k.MustPredicateID("http://e/cityIn")
	france := k.MustEntityID("http://e/france")
	g := NewAtom1(cityIn, france)
	if got := g.Format(k); got != "cityIn(x, france)" {
		t.Fatalf("Format = %q", got)
	}
	if got := Expression(nil).Format(k); got != "⊤" {
		t.Fatalf("empty Format = %q", got)
	}
	mayor := k.MustPredicateID("http://e/mayor")
	party := k.MustPredicateID("http://e/party")
	soc := k.MustEntityID("http://e/socialist")
	e := Expression{g, NewPath(mayor, party, soc)}
	want := "cityIn(x, france) ∧ mayor(x, y) ∧ party(y, socialist)"
	if got := e.Format(k); got != want {
		t.Fatalf("Format = %q want %q", got, want)
	}
}

func TestSetOps(t *testing.T) {
	a := []kb.EntID{1, 3, 5, 7}
	b := []kb.EntID{2, 3, 4, 7, 9}
	got := IntersectSorted(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("IntersectSorted = %v", got)
	}
	if !HasIntersection(a, b) || HasIntersection([]kb.EntID{1}, []kb.EntID{2}) {
		t.Fatal("HasIntersection wrong")
	}
	if !ContainsSorted(a, 5) || ContainsSorted(a, 6) {
		t.Fatal("ContainsSorted wrong")
	}
	if !EqualSorted(a, []kb.EntID{1, 3, 5, 7}) || EqualSorted(a, b) {
		t.Fatal("EqualSorted wrong")
	}
}

// dedupSorted removes duplicates from an ascending slice in place.
func dedupSorted(ids []kb.EntID) []kb.EntID {
	w := 0
	for i, x := range ids {
		if i == 0 || x != ids[w-1] {
			ids[w] = x
			w++
		}
	}
	return ids[:w]
}

func TestIntersectionProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := make([]kb.EntID, 0, len(xs))
		for _, x := range xs {
			a = append(a, kb.EntID(x))
		}
		b := make([]kb.EntID, 0, len(ys))
		for _, y := range ys {
			b = append(b, kb.EntID(y))
		}
		a = dedupSorted(SortIDs(a))
		b = dedupSorted(SortIDs(b))
		inter := IntersectSorted(a, b)
		m := make(map[kb.EntID]bool)
		for _, x := range a {
			m[x] = true
		}
		want := 0
		for _, y := range b {
			if m[y] {
				want++
			}
		}
		return len(inter) == want && HasIntersection(a, b) == (want > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
