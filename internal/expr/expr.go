// Package expr models REMI's language of referring expressions (Section 2.2
// and Table 1 of the paper): subgraph expressions rooted at a variable x in
// one of five shapes, and expressions (conjunctions of subgraph expressions
// sharing only x). It also provides their evaluation against a KB, with the
// LRU result caching described in Section 3.5.2.
package expr

import (
	"fmt"
	"slices"
	"strings"

	"github.com/remi-kb/remi/internal/kb"
)

// Shape enumerates REMI's subgraph-expression shapes (Table 1).
type Shape uint8

const (
	// Atom1 is p0(x, I0).
	Atom1 Shape = iota
	// Path is p0(x,y) ∧ p1(y, I1).
	Path
	// PathStar is p0(x,y) ∧ p1(y, I1) ∧ p2(y, I2).
	PathStar
	// Closed2 is p0(x,y) ∧ p1(x,y).
	Closed2
	// Closed3 is p0(x,y) ∧ p1(x,y) ∧ p2(x,y).
	Closed3
)

// String returns the table-1 name of the shape.
func (s Shape) String() string {
	switch s {
	case Atom1:
		return "1 atom"
	case Path:
		return "path"
	case PathStar:
		return "path + star"
	case Closed2:
		return "2 closed atoms"
	case Closed3:
		return "3 closed atoms"
	default:
		return fmt.Sprintf("shape(%d)", uint8(s))
	}
}

// Atoms returns the number of atoms of the shape.
func (s Shape) Atoms() int {
	switch s {
	case Atom1:
		return 1
	case Path, Closed2:
		return 2
	default:
		return 3
	}
}

// ExtraVariables returns the number of existentially quantified variables
// besides the root x (0 for single atoms, 1 otherwise — REMI's language bias
// allows at most one, Section 3.2).
func (s Shape) ExtraVariables() int {
	if s == Atom1 {
		return 0
	}
	return 1
}

// Subgraph is one subgraph expression. Only the fields used by its shape are
// meaningful:
//
//	Atom1:    P0, I0
//	Path:     P0, P1, I1
//	PathStar: P0, P1, I1, P2, I2   with (P1,I1) < (P2,I2)
//	Closed2:  P0, P1               with P0 < P1
//	Closed3:  P0, P1, P2           with P0 < P1 < P2
//
// Subgraph is comparable and canonical, so it can key maps directly.
type Subgraph struct {
	Shape      Shape
	P0, P1, P2 kb.PredID
	I0, I1, I2 kb.EntID
}

// NewAtom1 builds p0(x, I0).
func NewAtom1(p0 kb.PredID, i0 kb.EntID) Subgraph {
	return Subgraph{Shape: Atom1, P0: p0, I0: i0}
}

// NewPath builds p0(x,y) ∧ p1(y, I1).
func NewPath(p0, p1 kb.PredID, i1 kb.EntID) Subgraph {
	return Subgraph{Shape: Path, P0: p0, P1: p1, I1: i1}
}

// NewPathStar builds p0(x,y) ∧ p1(y,I1) ∧ p2(y,I2), normalizing the order of
// the two star atoms.
func NewPathStar(p0, p1 kb.PredID, i1 kb.EntID, p2 kb.PredID, i2 kb.EntID) Subgraph {
	if p2 < p1 || (p2 == p1 && i2 < i1) {
		p1, i1, p2, i2 = p2, i2, p1, i1
	}
	return Subgraph{Shape: PathStar, P0: p0, P1: p1, I1: i1, P2: p2, I2: i2}
}

// NewClosed2 builds p0(x,y) ∧ p1(x,y), normalizing predicate order.
func NewClosed2(p0, p1 kb.PredID) Subgraph {
	if p1 < p0 {
		p0, p1 = p1, p0
	}
	return Subgraph{Shape: Closed2, P0: p0, P1: p1}
}

// NewClosed3 builds p0(x,y) ∧ p1(x,y) ∧ p2(x,y), normalizing predicate order.
func NewClosed3(p0, p1, p2 kb.PredID) Subgraph {
	if p1 < p0 {
		p0, p1 = p1, p0
	}
	if p2 < p1 {
		p1, p2 = p2, p1
	}
	if p1 < p0 {
		p0, p1 = p1, p0
	}
	return Subgraph{Shape: Closed3, P0: p0, P1: p1, P2: p2}
}

// Atoms returns the number of atoms in the subgraph expression.
func (g Subgraph) Atoms() int { return g.Shape.Atoms() }

// Hash returns a well-mixed 64-bit hash of the subgraph expression, shared
// by the open-addressing tables that key on Subgraph (the enumerator's
// dedup set and the complexity estimator's cost cache). It is much cheaper
// than the runtime's generic struct hashing on this hot a path: the three
// packed field words are combined with distinct odd multipliers, then one
// xor-shift-multiply finalizer spreads them — enough mixing for power-of-2
// tables with linear probing.
func (g Subgraph) Hash() uint64 {
	h1 := uint64(g.P0) | uint64(g.I0)<<32
	h2 := uint64(g.P1) | uint64(g.I1)<<32
	h3 := uint64(g.P2) | uint64(g.I2)<<32 | uint64(g.Shape)<<24
	h := h1 ^ h2*0x9e3779b97f4a7c15 ^ h3*0xc2b2ae3d27d4eb4f
	h ^= h >> 32
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Format renders the subgraph expression with names resolved against k.
func (g Subgraph) Format(k *kb.KB) string {
	pn := func(p kb.PredID) string { return shortPred(k.PredicateName(p)) }
	en := func(e kb.EntID) string { return k.Term(e).LocalName() }
	switch g.Shape {
	case Atom1:
		return fmt.Sprintf("%s(x, %s)", pn(g.P0), en(g.I0))
	case Path:
		return fmt.Sprintf("%s(x, y) ∧ %s(y, %s)", pn(g.P0), pn(g.P1), en(g.I1))
	case PathStar:
		return fmt.Sprintf("%s(x, y) ∧ %s(y, %s) ∧ %s(y, %s)", pn(g.P0), pn(g.P1), en(g.I1), pn(g.P2), en(g.I2))
	case Closed2:
		return fmt.Sprintf("%s(x, y) ∧ %s(x, y)", pn(g.P0), pn(g.P1))
	case Closed3:
		return fmt.Sprintf("%s(x, y) ∧ %s(x, y) ∧ %s(x, y)", pn(g.P0), pn(g.P1), pn(g.P2))
	default:
		return fmt.Sprintf("subgraph(%v)", g)
	}
}

func shortPred(name string) string {
	inv := strings.HasSuffix(name, kb.InverseMarker)
	base := strings.TrimSuffix(name, kb.InverseMarker)
	t := base
	if i := strings.LastIndexAny(t, "#/"); i >= 0 && i+1 < len(t) {
		t = t[i+1:]
	}
	if inv {
		t += kb.InverseMarker
	}
	return t
}

// Expression is a conjunction of subgraph expressions rooted at the same
// variable x (Section 2.2.2). The slice order is the DFS stack order.
type Expression []Subgraph

// Format renders the expression with names resolved against k.
func (e Expression) Format(k *kb.KB) string {
	if len(e) == 0 {
		return "⊤"
	}
	parts := make([]string, len(e))
	for i, g := range e {
		parts[i] = g.Format(k)
	}
	return strings.Join(parts, " ∧ ")
}

// Atoms returns the total atom count of the expression.
func (e Expression) Atoms() int {
	n := 0
	for _, g := range e {
		n += g.Atoms()
	}
	return n
}

// Clone returns an independent copy of the expression.
func (e Expression) Clone() Expression {
	return append(Expression(nil), e...)
}

// Less orders subgraph expressions deterministically on canonical fields.
func Less(a, b Subgraph) bool {
	if a.Shape != b.Shape {
		return a.Shape < b.Shape
	}
	if a.P0 != b.P0 {
		return a.P0 < b.P0
	}
	if a.I0 != b.I0 {
		return a.I0 < b.I0
	}
	if a.P1 != b.P1 {
		return a.P1 < b.P1
	}
	if a.I1 != b.I1 {
		return a.I1 < b.I1
	}
	if a.P2 != b.P2 {
		return a.P2 < b.P2
	}
	return a.I2 < b.I2
}

// Compare orders subgraph expressions deterministically (the total order of
// Less as a three-way comparison, usable with slices.SortFunc).
func Compare(a, b Subgraph) int {
	switch {
	case Less(a, b):
		return -1
	case Less(b, a):
		return 1
	default:
		return 0
	}
}

// Key returns an order-insensitive canonical identifier for the expression:
// two expressions with the same set of subgraph expressions share a key.
func (e Expression) Key() string {
	sorted := e
	if len(e) > 1 && !slices.IsSortedFunc(e, Compare) {
		sorted = e.Clone()
		slices.SortFunc(sorted, Compare)
	}
	buf := make([]byte, 0, len(sorted)*28)
	for _, g := range sorted {
		buf = appendU32(buf, uint32(g.Shape))
		buf = appendU32(buf, uint32(g.P0))
		buf = appendU32(buf, uint32(g.P1))
		buf = appendU32(buf, uint32(g.P2))
		buf = appendU32(buf, uint32(g.I0))
		buf = appendU32(buf, uint32(g.I1))
		buf = appendU32(buf, uint32(g.I2))
	}
	return string(buf)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
