package expr

// Concurrency tests for the striped evaluator cache: many goroutines hammer
// Bindings over a shared Evaluator (run with -race -cpu 1,4,8 to exercise
// the stripes under contention), asserting correct values, coalesced
// computation counts and consistent statistics.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/rdf"
)

// stripeKB builds a small dense KB whose subgraph space comfortably exceeds
// the stripe count, so every stripe sees traffic.
func stripeKB(t testing.TB) *kb.KB {
	t.Helper()
	b := kb.NewBuilder()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://s/" + s) }
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		tr := rdf.Triple{
			S: iri("e" + string(rune('a'+rng.Intn(26)))),
			P: iri("p" + string(rune('a'+rng.Intn(6)))),
			O: iri("e" + string(rune('a'+rng.Intn(26)))),
		}
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(kb.Options{InverseTopFraction: 0.1})
}

// subgraphPool enumerates a mixed set of subgraph expressions across every
// shape, spread over the stripes by construction.
func subgraphPool(k *kb.KB) []Subgraph {
	var out []Subgraph
	n := kb.EntID(k.NumEntities())
	for _, p := range k.Predicates() {
		for e := kb.EntID(1); e <= n; e += 3 {
			out = append(out, NewAtom1(p, e))
		}
		for _, q := range k.Predicates() {
			if p < q {
				out = append(out, NewClosed2(p, q))
				out = append(out, NewPath(p, q, n/2+1))
			}
		}
	}
	return out
}

// TestEvaluatorStripedConcurrent checks value correctness under heavy
// sharing, with and without coalescing.
func TestEvaluatorStripedConcurrent(t *testing.T) {
	k := stripeKB(t)
	pool := subgraphPool(k)
	want := make(map[Subgraph][]kb.EntID, len(pool))
	for _, g := range pool {
		want[g] = BindingSet(k, g).Slice()
	}
	for _, coalesce := range []bool{false, true} {
		ev := NewEvaluator(k, 1<<12)
		if coalesce {
			ev.EnableCoalescing()
			// Force the full stripe fan-out regardless of the host's core
			// count so the sharded paths are always exercised.
			ev.restripe(evalStripes)
		}
		workers := 4 * runtime.GOMAXPROCS(0)
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 2000; i++ {
					g := pool[rng.Intn(len(pool))]
					got := ev.Bindings(g).Slice()
					exp := want[g]
					if len(got) != len(exp) {
						errs <- "binding length mismatch"
						return
					}
					for j := range got {
						if got[j] != exp[j] {
							errs <- "binding value mismatch"
							return
						}
					}
				}
			}(int64(w))
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("coalesce=%v: %s", coalesce, e)
		}
		evals, hits, misses := ev.Stats()
		if evals != uint64(workers*2000) {
			t.Fatalf("coalesce=%v: evals = %d, want %d", coalesce, evals, workers*2000)
		}
		if hits+misses != evals {
			t.Fatalf("coalesce=%v: hits %d + misses %d != evals %d", coalesce, hits, misses, evals)
		}
		// The cache (4096 across stripes) dwarfs the pool, so nothing is
		// evicted: with coalescing each subgraph is computed exactly once no
		// matter how many workers missed on it concurrently.
		if coalesce && ev.Computes() > uint64(len(pool)) {
			t.Fatalf("coalesced computes = %d for %d distinct subgraphs", ev.Computes(), len(pool))
		}
	}
}

// TestEvaluatorStripeDistribution guards the stripe selector: the pool of
// enumerated subgraphs must not collapse onto a few stripes (which would
// silently restore global contention).
func TestEvaluatorStripeDistribution(t *testing.T) {
	k := stripeKB(t)
	pool := subgraphPool(k)
	if len(pool) < 4*evalStripes {
		t.Fatalf("pool too small to judge distribution: %d", len(pool))
	}
	var hist [evalStripes]int
	for _, g := range pool {
		hist[g.Hash()&(evalStripes-1)]++
	}
	for s, n := range hist {
		if n == 0 {
			t.Fatalf("stripe %d received no subgraphs out of %d", s, len(pool))
		}
	}
}

// TestEvaluatorTinyCache keeps the capacity semantics of striping honest: a
// positive capacity smaller than the stripe count must still cache (one
// entry per stripe) rather than rounding down to zero.
func TestEvaluatorTinyCache(t *testing.T) {
	k := stripeKB(t)
	g := subgraphPool(k)[0]
	for _, striped := range []bool{false, true} {
		ev := NewEvaluator(k, 3)
		if striped {
			ev.EnableCoalescing()
			ev.restripe(evalStripes)
		}
		ev.Bindings(g)
		ev.Bindings(g)
		_, hits, _ := ev.Stats()
		if hits == 0 {
			t.Fatalf("striped=%v: tiny positive capacity must still produce cache hits", striped)
		}
	}
	// Capacity <= 0 keeps the store-nothing contract.
	off := NewEvaluator(k, 0)
	off.Bindings(g)
	off.Bindings(g)
	if _, hits, _ := off.Stats(); hits != 0 {
		t.Fatal("zero capacity must never hit")
	}
}
