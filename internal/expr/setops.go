package expr

import (
	"slices"
	"sort"

	"github.com/remi-kb/remi/internal/bindset"
	"github.com/remi-kb/remi/internal/kb"
)

// The set probes below switch from a linear merge to bindset.Gallop
// (exponential search in the larger side) past the shared
// bindset.GallopRatio skew. The KB's posting lists are Zipf-shaped, so a
// tiny Objects run meeting the Subjects run of a popular tail entity is the
// common case on the queue-build hot path — galloping turns those from
// O(small+large) into O(small·log(large/small)).

// IntersectSorted returns the intersection of two ascending EntID slices.
func IntersectSorted(a, b []kb.EntID) []kb.EntID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	// One exact-bound allocation instead of append growth.
	out := make([]kb.EntID, 0, len(a))
	if len(b) >= bindset.GallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j += bindset.Gallop(b[j:], x)
			if j >= len(b) {
				break
			}
			if b[j] == x {
				out = append(out, x)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsSorted reports whether the ascending slice a contains v.
func ContainsSorted(a []kb.EntID, v kb.EntID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// HasIntersection reports whether two ascending slices share an element,
// galloping through the larger side when the lengths are heavily skewed.
func HasIntersection(a, b []kb.EntID) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return false
	}
	if len(b) >= bindset.GallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j += bindset.Gallop(b[j:], x)
			if j >= len(b) {
				return false
			}
			if b[j] == x {
				return true
			}
		}
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// HasIntersection3 reports whether three ascending slices share a common
// element, without materializing any pairwise intersection: the classic
// max-pivot merge, galloping each cursor forward when its slice lags far
// behind the pivot. HoldsFor uses it for the path+star and 3-closed-atom
// membership tests, which the queue build fires once per candidate per
// extra target.
func HasIntersection3(a, b, c []kb.EntID) bool {
	if len(a) == 0 || len(b) == 0 || len(c) == 0 {
		return false
	}
	i, j, l := 0, 0, 0
	for {
		x := a[i]
		if b[j] > x {
			x = b[j]
		}
		if c[l] > x {
			x = c[l]
		}
		var ok bool
		if i, ok = advanceTo(a, i, x); !ok {
			return false
		}
		if j, ok = advanceTo(b, j, x); !ok {
			return false
		}
		if l, ok = advanceTo(c, l, x); !ok {
			return false
		}
		if a[i] == x && b[j] == x && c[l] == x {
			return true
		}
	}
}

// advanceTo moves cursor i of the ascending slice s to the first position
// with s[i] >= x, galloping through large gaps; ok is false when the slice
// is exhausted.
func advanceTo(s []kb.EntID, i int, x kb.EntID) (pos int, ok bool) {
	if s[i] >= x {
		return i, true
	}
	i += bindset.Gallop(s[i:], x)
	return i, i < len(s)
}

// EqualSorted reports whether two ascending slices hold the same elements.
func EqualSorted(a, b []kb.EntID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortIDs sorts a slice of entity ids ascending in place and returns it.
func SortIDs(ids []kb.EntID) []kb.EntID {
	slices.Sort(ids)
	return ids
}
