package expr

import (
	"slices"
	"sort"

	"github.com/remi-kb/remi/internal/kb"
)

// IntersectSorted returns the intersection of two ascending EntID slices.
func IntersectSorted(a, b []kb.EntID) []kb.EntID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	// One exact-bound allocation instead of append growth.
	out := make([]kb.EntID, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsSorted reports whether the ascending slice a contains v.
func ContainsSorted(a []kb.EntID, v kb.EntID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// HasIntersection reports whether two ascending slices share an element.
func HasIntersection(a, b []kb.EntID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// EqualSorted reports whether two ascending slices hold the same elements.
func EqualSorted(a, b []kb.EntID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortIDs sorts a slice of entity ids ascending in place and returns it.
func SortIDs(ids []kb.EntID) []kb.EntID {
	slices.Sort(ids)
	return ids
}
