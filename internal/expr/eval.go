package expr

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/remi-kb/remi/internal/bindset"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/lru"
)

// HoldsFor reports whether the subgraph expression g has a match in k with
// its root variable bound to t (the membership test used when intersecting
// candidate subgraph expressions across target entities).
func HoldsFor(k *kb.KB, g Subgraph, t kb.EntID) bool {
	switch g.Shape {
	case Atom1:
		return k.HasFact(g.P0, t, g.I0)
	case Path:
		return HasIntersection(k.Objects(g.P0, t), k.Subjects(g.P1, g.I1))
	case PathStar:
		return HasIntersection3(k.Objects(g.P0, t), k.Subjects(g.P1, g.I1), k.Subjects(g.P2, g.I2))
	case Closed2:
		return HasIntersection(k.Objects(g.P0, t), k.Objects(g.P1, t))
	case Closed3:
		return HasIntersection3(k.Objects(g.P0, t), k.Objects(g.P1, t), k.Objects(g.P2, t))
	default:
		return false
	}
}

// BindingSet computes the full set of root-variable bindings of g in k as an
// adaptive bindset.Set (sparse slice or dense bitmap, chosen by density
// against the entity universe).
func BindingSet(k *kb.KB, g Subgraph) bindset.Set {
	universe := k.NumEntities()
	switch g.Shape {
	case Atom1:
		return bindset.FromSorted(k.Subjects(g.P0, g.I0), universe)
	case Path:
		ys := k.Subjects(g.P1, g.I1)
		sets := make([][]kb.EntID, 0, len(ys))
		for _, y := range ys {
			if xs := k.Subjects(g.P0, y); len(xs) > 0 {
				sets = append(sets, xs)
			}
		}
		return bindset.UnionSlices(sets, universe)
	case PathStar:
		ys := IntersectSorted(k.Subjects(g.P1, g.I1), k.Subjects(g.P2, g.I2))
		sets := make([][]kb.EntID, 0, len(ys))
		for _, y := range ys {
			if xs := k.Subjects(g.P0, y); len(xs) > 0 {
				sets = append(sets, xs)
			}
		}
		return bindset.UnionSlices(sets, universe)
	case Closed2:
		a, b := g.P0, g.P1
		if k.PredFreq(b) < k.PredFreq(a) {
			a, b = b, a
		}
		var out []kb.EntID
		for _, pr := range k.Facts(a) {
			if len(out) > 0 && out[len(out)-1] == pr.S {
				continue // subject already confirmed
			}
			if k.HasFact(b, pr.S, pr.O) {
				out = append(out, pr.S)
			}
		}
		return bindset.FromSorted(out, universe)
	case Closed3:
		a, b, c := g.P0, g.P1, g.P2
		// Iterate the least frequent predicate.
		if k.PredFreq(b) < k.PredFreq(a) {
			a, b = b, a
		}
		if k.PredFreq(c) < k.PredFreq(a) {
			a, c = c, a
		}
		var out []kb.EntID
		for _, pr := range k.Facts(a) {
			if len(out) > 0 && out[len(out)-1] == pr.S {
				continue
			}
			if k.HasFact(b, pr.S, pr.O) && k.HasFact(c, pr.S, pr.O) {
				out = append(out, pr.S)
			}
		}
		return bindset.FromSorted(out, universe)
	default:
		return bindset.FromSorted(nil, universe)
	}
}

// Bindings computes the bindings of g as an ascending slice. The slice may
// share storage with the KB's indexes; callers must not modify it.
func Bindings(k *kb.KB, g Subgraph) []kb.EntID {
	return BindingSet(k, g).Slice()
}

// inflightCall coalesces concurrent cache misses on one subgraph expression:
// the first caller computes, everyone else waits on done and shares val.
type inflightCall struct {
	done chan struct{}
	val  bindset.Set
}

// evalStripes caps the number of independent cache/coalescing shards of a
// shared Evaluator (a power of two; the stripe is picked from the subgraph
// hash). 16 stripes keep the worst case — every P-REMI worker missing at
// once — at a sixteenth of the old single-mutex contention while staying
// small enough that per-stripe LRU capacity remains meaningful. The actual
// stripe count adapts to GOMAXPROCS: lock contention only exists between
// threads that run in parallel, so a box with fewer cores gets fewer
// stripes and a 1-CPU container (where the old global mutex was never
// contended) keeps a single stripe and pays no fan-out cost at all.
const evalStripes = 16

// evalStripe is one shard: its slice of the LRU capacity plus its own
// coalescing state. Hot Bindings calls touch exactly one stripe, so workers
// evaluating different subgraphs no longer serialize on a global mutex.
// The cache is embedded by value and its index map is lazy, so a miner
// construction (one evaluator) costs one allocation regardless of the
// stripe count — only stripes that see traffic allocate.
type evalStripe struct {
	cache    lru.Cache[Subgraph, bindset.Set]
	mu       sync.Mutex
	inflight map[Subgraph]*inflightCall // created lazily on the first coalesced miss
}

// Evaluator evaluates subgraph expressions and expressions against a KB with
// an LRU cache of subgraph binding sets (Section 3.5.2: "query results are
// cached in a least-recently-used fashion"). It is safe for concurrent use;
// P-REMI threads share one Evaluator. In shared mode (EnableCoalescing) the
// cache and its lock are striped by subgraph hash, so concurrent Bindings
// calls on different subgraphs touch disjoint mutexes instead of
// serializing on one global cache lock, and concurrent misses on the same
// subgraph expression are coalesced onto a single computation — a cold
// cache under P-REMI multiplies neither the evaluation work nor the lock
// contention (and the hit/miss counters keep describing cache lookups, not
// redundant recomputations). A sequential evaluator keeps a single stripe:
// with one thread there is nothing to contend with, so it pays neither the
// stripe fan-out at construction nor the hash-based stripe pick per call.
type Evaluator struct {
	K *kb.KB
	// stripes has length 1 (sequential) or evalStripes (shared mode).
	stripes   []evalStripe
	cacheSize int

	evals    uint64 // total subgraph evaluations requested
	computes uint64 // evaluations actually executed against the KB

	coalesce bool
}

// NewEvaluator wraps k with a cache of the given capacity (entries).
func NewEvaluator(k *kb.KB, cacheSize int) *Evaluator {
	ev := &Evaluator{K: k, cacheSize: cacheSize, stripes: make([]evalStripe, 1)}
	ev.stripes[0].cache.Init(cacheSize)
	return ev
}

// stripe returns the shard responsible for g.
func (ev *Evaluator) stripe(g Subgraph) *evalStripe {
	if len(ev.stripes) == 1 {
		return &ev.stripes[0]
	}
	return &ev.stripes[g.Hash()&uint64(len(ev.stripes)-1)]
}

// EnableCoalescing switches the evaluator to shared mode: the cache is
// striped by subgraph hash (capacity divided evenly, stripe count adapted
// to GOMAXPROCS up to evalStripes) and cache misses coalesce per key. It
// costs one small allocation per cache miss, which only buys anything when
// several goroutines share the evaluator — the miner enables it for P-REMI
// and leaves sequential REMI on the zero-overhead single-stripe path. Call
// before the first Bindings call; it must not race with evaluations.
// (Per-stripe inflight maps and cache index maps are created lazily, so
// only stripes that see traffic allocate.)
func (ev *Evaluator) EnableCoalescing() {
	ev.coalesce = true
	n := 1
	for n < evalStripes && n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	ev.restripe(n)
}

// restripe resets the evaluator to n shards (n must be a power of two).
// Any cached entries are discarded; callers only invoke it before the
// first evaluation.
func (ev *Evaluator) restripe(n int) {
	if len(ev.stripes) == n {
		return
	}
	per := ev.cacheSize
	if per > 0 {
		// Ceiling division: total capacity is preserved or slightly rounded
		// up, and small positive capacities still cache at least one entry
		// per stripe.
		per = (ev.cacheSize + n - 1) / n
	}
	ev.stripes = make([]evalStripe, n)
	for i := range ev.stripes {
		ev.stripes[i].cache.Init(per)
	}
}

// Bindings returns the (possibly cached) binding set of g. The returned set
// is shared: callers must treat it as immutable (only *Into operations on
// caller-owned scratch sets may mutate, and never an operand).
func (ev *Evaluator) Bindings(g Subgraph) bindset.Set {
	atomic.AddUint64(&ev.evals, 1)
	s := ev.stripe(g)
	if v, ok := s.cache.Get(g); ok {
		return v
	}
	if !ev.coalesce {
		atomic.AddUint64(&ev.computes, 1)
		v := BindingSet(ev.K, g)
		s.cache.Put(g, v)
		return v
	}
	s.mu.Lock()
	if c, ok := s.inflight[g]; ok {
		s.mu.Unlock()
		<-c.done
		return c.val
	}
	// Double-check under the stripe's coalescing lock without touching the
	// cache stats: a leader that finished between our miss and this lock has
	// already published the value (Put happens before the inflight delete,
	// which happens before we could get here), so a duplicate computation is
	// impossible — at most one evaluation runs per subgraph expression.
	if v, ok := s.cache.Peek(g); ok {
		s.mu.Unlock()
		return v
	}
	c := &inflightCall{done: make(chan struct{})}
	if s.inflight == nil {
		s.inflight = make(map[Subgraph]*inflightCall)
	}
	s.inflight[g] = c
	s.mu.Unlock()

	atomic.AddUint64(&ev.computes, 1)
	c.val = BindingSet(ev.K, g)
	s.cache.Put(g, c.val)
	s.mu.Lock()
	delete(s.inflight, g)
	s.mu.Unlock()
	close(c.done)
	return c.val
}

// ExpressionBindings intersects the binding sets of all subgraph expressions
// of e, i.e. computes e(K) as defined in Section 2.2.2.
func (ev *Evaluator) ExpressionBindings(e Expression) bindset.Set {
	if len(e) == 0 {
		return bindset.FromSorted(nil, ev.K.NumEntities())
	}
	cur := ev.Bindings(e[0])
	for _, g := range e[1:] {
		if cur.IsEmpty() {
			return cur
		}
		cur = bindset.Intersect(cur, ev.Bindings(g))
	}
	return cur
}

// IsRE reports whether e(K) equals exactly the target set T (conditions (1)
// and (2) of the RE definition in Section 2.2.2). Targets may be passed in
// any order; unsorted inputs are sorted on a copy.
func (ev *Evaluator) IsRE(e Expression, targets []kb.EntID) bool {
	for i := 1; i < len(targets); i++ {
		if targets[i-1] >= targets[i] {
			targets = SortIDs(append([]kb.EntID(nil), targets...))
			break
		}
	}
	return ev.ExpressionBindings(e).EqualSorted(targets)
}

// Stats returns the number of evaluation requests plus cache hit/miss
// counters, summed across the stripes.
func (ev *Evaluator) Stats() (evals, hits, misses uint64) {
	for i := range ev.stripes {
		h, m := ev.stripes[i].cache.Stats()
		hits += h
		misses += m
	}
	return atomic.LoadUint64(&ev.evals), hits, misses
}

// Computes returns the number of binding-set evaluations actually executed
// against the KB. With miss coalescing it can be lower than the miss count:
// concurrent misses on one subgraph expression share a single computation.
func (ev *Evaluator) Computes() uint64 { return atomic.LoadUint64(&ev.computes) }
