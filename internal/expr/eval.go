package expr

import (
	"sync/atomic"

	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/lru"
)

// HoldsFor reports whether the subgraph expression g has a match in k with
// its root variable bound to t (the membership test used when intersecting
// candidate subgraph expressions across target entities).
func HoldsFor(k *kb.KB, g Subgraph, t kb.EntID) bool {
	switch g.Shape {
	case Atom1:
		return k.HasFact(g.P0, t, g.I0)
	case Path:
		return HasIntersection(k.Objects(g.P0, t), k.Subjects(g.P1, g.I1))
	case PathStar:
		ys := IntersectSorted(k.Subjects(g.P1, g.I1), k.Subjects(g.P2, g.I2))
		return HasIntersection(k.Objects(g.P0, t), ys)
	case Closed2:
		return HasIntersection(k.Objects(g.P0, t), k.Objects(g.P1, t))
	case Closed3:
		ys := IntersectSorted(k.Objects(g.P0, t), k.Objects(g.P1, t))
		return HasIntersection(ys, k.Objects(g.P2, t))
	default:
		return false
	}
}

// Bindings computes the full set of root-variable bindings of g in k,
// returned as an ascending slice.
func Bindings(k *kb.KB, g Subgraph) []kb.EntID {
	switch g.Shape {
	case Atom1:
		return append([]kb.EntID(nil), k.Subjects(g.P0, g.I0)...)
	case Path:
		ys := k.Subjects(g.P1, g.I1)
		sets := make([][]kb.EntID, 0, len(ys))
		for _, y := range ys {
			if xs := k.Subjects(g.P0, y); len(xs) > 0 {
				sets = append(sets, xs)
			}
		}
		return UnionSortedMany(sets)
	case PathStar:
		ys := IntersectSorted(k.Subjects(g.P1, g.I1), k.Subjects(g.P2, g.I2))
		sets := make([][]kb.EntID, 0, len(ys))
		for _, y := range ys {
			if xs := k.Subjects(g.P0, y); len(xs) > 0 {
				sets = append(sets, xs)
			}
		}
		return UnionSortedMany(sets)
	case Closed2:
		a, b := g.P0, g.P1
		if k.PredFreq(b) < k.PredFreq(a) {
			a, b = b, a
		}
		var out []kb.EntID
		for _, pr := range k.Facts(a) {
			if len(out) > 0 && out[len(out)-1] == pr.S {
				continue // subject already confirmed
			}
			if k.HasFact(b, pr.S, pr.O) {
				out = append(out, pr.S)
			}
		}
		return out
	case Closed3:
		a, b, c := g.P0, g.P1, g.P2
		// Iterate the least frequent predicate.
		if k.PredFreq(b) < k.PredFreq(a) {
			a, b = b, a
		}
		if k.PredFreq(c) < k.PredFreq(a) {
			a, c = c, a
		}
		var out []kb.EntID
		for _, pr := range k.Facts(a) {
			if len(out) > 0 && out[len(out)-1] == pr.S {
				continue
			}
			if k.HasFact(b, pr.S, pr.O) && k.HasFact(c, pr.S, pr.O) {
				out = append(out, pr.S)
			}
		}
		return out
	default:
		return nil
	}
}

// Evaluator evaluates subgraph expressions and expressions against a KB with
// an LRU cache of subgraph binding sets (Section 3.5.2: "query results are
// cached in a least-recently-used fashion"). It is safe for concurrent use;
// P-REMI threads share one Evaluator.
type Evaluator struct {
	K     *kb.KB
	cache *lru.Cache[Subgraph, []kb.EntID]

	evals uint64 // total subgraph evaluations requested
}

// NewEvaluator wraps k with a cache of the given capacity (entries).
func NewEvaluator(k *kb.KB, cacheSize int) *Evaluator {
	return &Evaluator{K: k, cache: lru.New[Subgraph, []kb.EntID](cacheSize)}
}

// Bindings returns the (possibly cached) binding set of g. The returned
// slice is shared: callers must not modify it.
func (ev *Evaluator) Bindings(g Subgraph) []kb.EntID {
	atomic.AddUint64(&ev.evals, 1)
	if v, ok := ev.cache.Get(g); ok {
		return v
	}
	v := Bindings(ev.K, g)
	ev.cache.Put(g, v)
	return v
}

// ExpressionBindings intersects the binding sets of all subgraph expressions
// of e, i.e. computes e(K) as defined in Section 2.2.2.
func (ev *Evaluator) ExpressionBindings(e Expression) []kb.EntID {
	if len(e) == 0 {
		return nil
	}
	cur := ev.Bindings(e[0])
	for _, g := range e[1:] {
		if len(cur) == 0 {
			return nil
		}
		cur = IntersectSorted(cur, ev.Bindings(g))
	}
	return cur
}

// IsRE reports whether e(K) equals exactly the target set T (conditions (1)
// and (2) of the RE definition in Section 2.2.2). Targets may be passed in
// any order; unsorted inputs are sorted on a copy.
func (ev *Evaluator) IsRE(e Expression, targets []kb.EntID) bool {
	for i := 1; i < len(targets); i++ {
		if targets[i-1] >= targets[i] {
			targets = SortIDs(append([]kb.EntID(nil), targets...))
			break
		}
	}
	return EqualSorted(ev.ExpressionBindings(e), targets)
}

// Stats returns the number of evaluation requests plus cache hit/miss
// counters.
func (ev *Evaluator) Stats() (evals, hits, misses uint64) {
	h, m := ev.cache.Stats()
	return atomic.LoadUint64(&ev.evals), h, m
}
