// Package lru implements a small, synchronized least-recently-used cache.
// REMI evaluates the same subgraph-expression queries many times during the
// DFS exploration; the paper (Section 3.5.2) caches query results in an LRU
// fashion, which this package provides.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map. The zero value is not usable; create
// caches with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[K]*list.Element

	hits, misses uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding at most capacity entries. A capacity <= 0
// yields a cache that stores nothing (all lookups miss).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key with val, evicting the least recently used
// entry when over capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		if last != nil {
			c.ll.Remove(last)
			delete(c.items, last.Value.(*entry[K, V]).key)
		}
	}
}

// Len returns the current number of entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache (statistics are preserved).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[K]*list.Element)
}
