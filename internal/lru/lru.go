// Package lru implements a small, synchronized least-recently-used cache.
// REMI evaluates the same subgraph-expression queries many times during the
// DFS exploration; the paper (Section 3.5.2) caches query results in an LRU
// fashion, which this package provides.
//
// The recency list is intrusive: entries live in a growable arena slice and
// link to each other by index, so a Put allocates no per-entry list nodes
// (the arena grows amortized and evicted slots are recycled through a free
// list). This matters because the mining hot path fills the cache with one
// entry per evaluated subgraph expression.
package lru

import "sync"

// none marks the absence of a link or free slot.
const none = int32(-1)

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next int32
}

// Cache is a fixed-capacity LRU map. The zero value is not usable; create
// caches with New, or initialize an embedded value in place with Init.
// All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	arena    []entry[K, V]
	items    map[K]int32 // created lazily on the first Put
	head     int32       // most recently used
	tail     int32       // least recently used
	free     int32       // head of the recycled-slot list (linked via next)

	hits, misses uint64
}

// New returns a cache holding at most capacity entries. A capacity <= 0
// yields a cache that stores nothing (all lookups miss).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	c := &Cache[K, V]{}
	c.Init(capacity)
	return c
}

// Init prepares an embedded (zero-value) cache in place with the given
// capacity, allocating nothing: the item index is created lazily on the
// first Put. Callers that shard one logical cache across many embedded
// stripes (see expr.Evaluator) pay per-stripe cost only for stripes that
// see traffic. Must not race with other methods.
func (c *Cache[K, V]) Init(capacity int) {
	c.capacity = capacity
	c.head, c.tail, c.free = none, none, none
}

// unlink removes slot i from the recency list.
func (c *Cache[K, V]) unlink(i int32) {
	e := &c.arena[i]
	if e.prev != none {
		c.arena[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != none {
		c.arena[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

// pushFront inserts slot i as the most recently used.
func (c *Cache[K, V]) pushFront(i int32) {
	e := &c.arena[i]
	e.prev = none
	e.next = c.head
	if c.head != none {
		c.arena[c.head].prev = i
	}
	c.head = i
	if c.tail == none {
		c.tail = i
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.items[key]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		c.hits++
		return c.arena[i].val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the cached value for key without touching the recency order
// or the hit/miss counters. It exists for internal double-checks (e.g. the
// evaluator's miss coalescing) that must not distort the cache statistics.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.items[key]; ok {
		return c.arena[i].val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key with val, evicting the least recently used
// entry when over capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.items[key]; ok {
		c.arena[i].val = val
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		return
	}
	if c.items == nil {
		c.items = make(map[K]int32)
	}
	var i int32
	switch {
	case len(c.items) >= c.capacity:
		// Recycle the least recently used slot in place.
		i = c.tail
		c.unlink(i)
		delete(c.items, c.arena[i].key)
	case c.free != none:
		i = c.free
		c.free = c.arena[i].next
	default:
		c.arena = append(c.arena, entry[K, V]{})
		i = int32(len(c.arena) - 1)
	}
	c.arena[i].key = key
	c.arena[i].val = val
	c.items[key] = i
	c.pushFront(i)
}

// Len returns the current number of entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache (statistics are preserved; the arena is recycled
// through the free list rather than released).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero entry[K, V]
	for i := range c.arena {
		c.arena[i] = zero
		c.arena[i].next = int32(i) + 1
		c.arena[i].prev = none
	}
	if n := len(c.arena); n > 0 {
		c.arena[n-1].next = none
		c.free = 0
	} else {
		c.free = none
	}
	c.head, c.tail = none, none
	c.items = make(map[K]int32)
}
