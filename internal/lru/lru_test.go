package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicPutGet(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d %v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Fatal("missing key found")
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // refresh a
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("updated value = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New[string, int](0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
}

func TestStats(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge did not empty the cache")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("value survived purge")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Put(i%100, i)
				c.Get((i + w) % 100)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestManyEvictions(t *testing.T) {
	c := New[string, int](16)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 16 {
		t.Fatalf("Len = %d", c.Len())
	}
	// The 16 most recent keys must be present.
	for i := 984; i < 1000; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d evicted", i)
		}
	}
}
