package cluster

import (
	"testing"
	"time"
)

func TestLatencyTrackerWarmup(t *testing.T) {
	lt := &latencyTracker{}
	for i := 0; i < latencyMinSamples-1; i++ {
		lt.observe(10 * time.Millisecond)
		if p := lt.p99(); p != 0 {
			t.Fatalf("p99 = %v after %d samples; want 0 until %d arrived", p, i+1, latencyMinSamples)
		}
	}
	lt.observe(10 * time.Millisecond)
	p := lt.p99()
	if p < 9*time.Millisecond || p > 30*time.Millisecond {
		t.Fatalf("p99 of steady 10ms stream = %v, want near 10ms", p)
	}
}

func TestLatencyTrackerSpreadRaisesP99(t *testing.T) {
	steady, spread := &latencyTracker{}, &latencyTracker{}
	for i := 0; i < 64; i++ {
		steady.observe(20 * time.Millisecond)
		if i%2 == 0 {
			spread.observe(5 * time.Millisecond)
		} else {
			spread.observe(35 * time.Millisecond)
		}
	}
	// Same mean, different variance: the spread stream's p99 must clear the
	// steady stream's by the 2.33σ term.
	if sp, st := spread.p99(), steady.p99(); sp <= st {
		t.Fatalf("p99 spread=%v <= steady=%v; variance term is not applied", sp, st)
	}
}

func TestLatencyTrackerFloor(t *testing.T) {
	lt := &latencyTracker{}
	for i := 0; i < 32; i++ {
		lt.observe(10 * time.Microsecond)
	}
	if p := lt.p99(); p < time.Millisecond {
		t.Fatalf("p99 = %v, want the 1ms floor", p)
	}
}
