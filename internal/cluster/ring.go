// Package cluster is the distributed serving tier of remi: a thin HTTP
// router (cmd/remi-router) that consistent-hashes each request's dedup key
// onto a fleet of remi-serve replicas, and the snapshot puller that keeps
// those replicas' KB images fresh. The router wraps every forward in a
// robustness envelope — active /readyz probing, a per-replica circuit
// breaker, bounded retries with backoff and jitter, optional hedged second
// requests, and a propagated timeout budget — so a wedged, crashing or
// stale replica is never visible to a client: the ring degrades to the
// next healthy replica, and only a fully-down fleet answers 503.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is the number of virtual nodes each replica places on the
// ring. 128 keeps the key-space split within a few percent of even for
// small fleets while a membership change still moves only ~1/N of keys.
const defaultVnodes = 128

// Ring is an immutable consistent-hash ring over a set of member names.
// Lookups are deterministic in the member names alone — two routers
// configured with the same replica list agree on every key — and removing
// a member moves only the keys whose primary it was (each to that key's
// next member in ring order), which is what keeps replica result caches
// warm across membership changes.
type Ring struct {
	names  []string
	vnodes []vnode // sorted by hash
}

type vnode struct {
	hash uint64
	idx  int // index into names
}

// NewRing builds a ring over names with vnodesPer virtual nodes per member
// (0 picks the default). Names must be non-empty and unique; order does
// not matter.
func NewRing(names []string, vnodesPer int) *Ring {
	if vnodesPer <= 0 {
		vnodesPer = defaultVnodes
	}
	// Sort a copy so rings built from differently-ordered replica lists
	// are identical, ties on equal vnode hashes included.
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	r := &Ring{names: sorted, vnodes: make([]vnode, 0, len(sorted)*vnodesPer)}
	for i, name := range sorted {
		for v := 0; v < vnodesPer; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashKey(name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].idx < r.vnodes[b].idx
	})
	return r
}

// Members returns the member names in the ring's canonical (sorted) order.
func (r *Ring) Members() []string { return append([]string(nil), r.names...) }

// Sequence returns every member in preference order for key: the key's
// primary first, then each distinct member encountered walking the ring
// clockwise. A caller that skips unhealthy members degrades exactly the
// way consistent hashing promises — keys of a down member fall to its ring
// successor, everyone else's keys stay put.
func (r *Ring) Sequence(key string) []string {
	if len(r.names) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, len(r.names))
	seen := make([]bool, len(r.names))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.names); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[vn.idx] {
			seen[vn.idx] = true
			out = append(out, r.names[vn.idx])
		}
	}
	return out
}

// Primary returns the first member of Sequence(key).
func (r *Ring) Primary(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// hashKey is FNV-1a 64: fast, allocation-free and stable across processes,
// which is all a routing hash needs (no adversarial keys cross the router's
// trust boundary — a client can at worst skew its own placement).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
