package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker's transitions deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := newFakeClock()
	b.now = clk.Now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := testBreaker(3, 5*time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Report(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, 5*time.Second)
	b.Report(false)
	b.Report(false)
	b.Report(true) // streak broken
	b.Report(false)
	b.Report(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed: a success must zero the failure streak", got)
	}
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after a fresh full streak", got)
	}
}

func TestBreakerHalfOpenTrialCycle(t *testing.T) {
	b, clk := testBreaker(2, 5*time.Second)
	b.Report(false)
	b.Report(false)
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}

	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker past cooldown refused the half-open trial")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker granted a second trial while the first is out")
	}

	// Failed trial: back to open for a full fresh cooldown.
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request before its fresh cooldown elapsed")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker refused its next trial")
	}

	// Successful trial closes the breaker again.
	b.Report(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

// A trial whose Report never arrives (cancelled hedge, crashed goroutine)
// must not wedge the breaker shut forever: the slot self-heals after a
// cooldown.
func TestBreakerTrialSlotSelfHeals(t *testing.T) {
	b, clk := testBreaker(1, 5*time.Second)
	b.Report(false)
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no trial granted")
	}
	// The trial's outcome is lost. Within the cooldown the slot stays taken…
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("trial slot re-granted too early")
	}
	// …and after it, a new trial is granted.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("lost trial wedged the breaker shut")
	}
}

func TestBreakerLateFailureWhileOpen(t *testing.T) {
	b, _ := testBreaker(1, 5*time.Second)
	b.Report(false)
	// A request admitted before the breaker opened fails late: the breaker
	// is already open and must stay exactly there.
	b.Report(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != 5*time.Second {
		t.Fatalf("defaults = (%d, %v), want (3, 5s)", b.threshold, b.cooldown)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:    "closed",
		BreakerOpen:      "open",
		BreakerHalfOpen:  "half-open",
		BreakerState(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(3, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Report(i%3 != 0)
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
	// No particular end state: the test exists for the race detector.
	_ = b.State()
}
