package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/remi-kb/remi/internal/server/faults"
)

// readyBody is the slice of a replica's /readyz answer the prober cares
// about: Degraded reports a KB serving last-known-good under reload
// quarantine — still correct to route to, but worth surfacing in the
// router's stats so an operator sees which replica is stale.
type readyBody struct {
	Status   string `json:"status"`
	Degraded bool   `json:"degraded"`
}

// probeAll probes every replica concurrently and returns when all probes
// settled. It is the body of both the background prober tick and the
// exported ProbeNow.
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe checks one replica's /readyz: a 200 marks it healthy (carrying the
// degraded flag along), anything else — a 503 from a draining replica, a
// transport error, a wedged probe — takes it out of routing until a probe
// succeeds again.
func (rt *Router) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	if err := faults.Fire(pctx, faults.ProbeTimeout); err != nil {
		rep.setHealth(false, false, "probe: "+err.Error())
		return
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		rep.setHealth(false, false, "probe: "+err.Error())
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.setHealth(false, false, "probe: "+err.Error())
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		rep.setHealth(false, false, "probe: /readyz answered "+resp.Status)
		return
	}
	var rb readyBody
	_ = json.Unmarshal(body, &rb) // a 200 with an unparseable body is still ready
	rep.setHealth(true, rb.Degraded, "")
}

// ProbeNow probes every replica once and waits for the results, so tests
// and startup code can drive health state deterministically instead of
// sleeping through a prober tick.
func (rt *Router) ProbeNow(ctx context.Context) { rt.probeAll(ctx) }

// StartProbing launches the background prober at the configured cadence.
// It returns immediately; probing stops when ctx ends.
func (rt *Router) StartProbing(ctx context.Context) {
	go func() {
		t := time.NewTicker(rt.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.probeAll(ctx)
			}
		}
	}()
}
