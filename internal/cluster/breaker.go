package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests through and counts consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single trial request; its outcome decides
	// between Closed and Open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker: after Threshold consecutive
// failures it opens and sheds load off the replica for Cooldown, then
// half-opens to admit one trial request whose outcome decides whether the
// replica rejoins the rotation. It exists so a down replica costs the
// router one failed attempt per cooldown instead of one per request.
//
// The zero value is not usable; construct with NewBreaker. All methods are
// safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	trialOut  bool      // half-open: the single trial slot is taken
	trialAt   time.Time // when the trial slot was granted
	threshold int
	cooldown  time.Duration

	// now is replaceable in tests so state transitions are deterministic.
	now func() time.Time
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and half-opens after cooldown. Non-positive arguments pick
// defaults (3 failures, 5s cooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent through the breaker right
// now. An open breaker whose cooldown has elapsed transitions to half-open
// and grants exactly one caller the trial slot; everyone else is rejected
// until Report settles the trial.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.trialOut = true
		b.trialAt = b.now()
		return true
	case BreakerHalfOpen:
		// A trial whose report never arrived (a hedged attempt the router
		// cancelled, a crashed goroutine) self-heals after a cooldown so
		// the slot can't wedge shut.
		if b.trialOut && b.now().Sub(b.trialAt) < b.cooldown {
			return false
		}
		b.trialOut = true
		b.trialAt = b.now()
		return true
	}
	return false
}

// Report records the outcome of an allowed request. A success closes the
// breaker and zeroes the failure streak; a failure while closed counts
// toward the threshold, and a failed half-open trial re-opens for another
// full cooldown.
func (b *Breaker) Report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = BreakerClosed
		b.failures = 0
		b.trialOut = false
		return
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trialOut = false
	case BreakerOpen:
		// A late failure from a request admitted before the breaker
		// opened; the breaker is already doing its job.
	}
}

// State returns the breaker's current position without advancing it (an
// open breaker past its cooldown still reads Open until Allow runs).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
