package cluster

import (
	"math"
	"sync"
	"time"
)

// ewmaAlpha weights the latency EWMA: ~0.1 means the estimate reflects the
// last few dozen requests, fast enough to track a replica warming its
// caches, slow enough that one outlier doesn't whip the hedge delay around.
const ewmaAlpha = 0.1

// latencyMinSamples is how many observations the tracker wants before it
// trusts its p99 estimate; below it, hedging falls back to a fixed delay.
const latencyMinSamples = 8

// latencyTracker keeps an exponentially-weighted estimate of forward
// latency mean and variance, from which the router derives the hedge
// delay: fire the second request when the first has taken longer than the
// estimated p99, i.e. when it is already in the slowest percentile and a
// fresh attempt elsewhere will likely beat it.
type latencyTracker struct {
	mu       sync.Mutex
	mean     float64 // EWMA of latency, in ms
	variance float64 // EWMA of squared deviation, in ms²
	n        int64
}

func (t *latencyTracker) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	if t.n == 1 {
		t.mean = ms
		return
	}
	diff := ms - t.mean
	incr := ewmaAlpha * diff
	t.mean += incr
	t.variance = (1 - ewmaAlpha) * (t.variance + diff*incr)
}

// p99 estimates the 99th-percentile latency as mean + 2.33σ (the normal
// quantile — coarse for a latency tail, but the hedge delay only needs to
// be "clearly slower than usual", not a calibrated percentile). It returns
// 0 until enough samples arrived to make the estimate meaningful.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < latencyMinSamples {
		return 0
	}
	ms := t.mean + 2.33*math.Sqrt(t.variance)
	if ms < 1 {
		ms = 1
	}
	return time.Duration(ms * float64(time.Millisecond))
}
