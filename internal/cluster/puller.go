package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/server"
	"github.com/remi-kb/remi/internal/server/faults"
)

// Puller keeps one replica KB fresh from a snapshot source: it downloads
// the image to a temp file, verifies it off to the side (a full-validation
// heap load, so a torn or corrupt pull never touches the serving path),
// atomically renames it into place and opens the mmap'd serving copy. It
// plugs straight into Server.ReloadKB as the load func, which supplies the
// containment: a failed pull quarantines with backoff while the replica
// keeps serving its last-known-good generation, and an unchanged image
// (content-hash match) is a benign no-op that doesn't bump the generation
// or invalidate caches.
type Puller struct {
	name     string
	source   string // http(s) URL, file, or directory
	cacheDir string
	client   *http.Client
	timeout  time.Duration

	mu       sync.Mutex
	lastHash string
	loaded   bool
}

// NewPuller builds a puller for KB name from source, caching images under
// cacheDir. A source URL is fetched with GET (a trailing slash appends
// <name>.snap); a directory source reads <dir>/<name>.snap; anything else
// is a file path (useful when replicas share a snapshot volume).
func NewPuller(name, source, cacheDir string) *Puller {
	return &Puller{
		name:     name,
		source:   source,
		cacheDir: cacheDir,
		client:   &http.Client{},
		timeout:  60 * time.Second,
	}
}

// Name is the registry name of the KB this puller feeds.
func (p *Puller) Name() string { return p.name }

// CurrentPath is where the verified, currently-serving image lives.
func (p *Puller) CurrentPath() string { return filepath.Join(p.cacheDir, p.name+".snap") }

// Load performs one pull-verify-swap cycle. It has the signature
// Server.ReloadKB wants; returning server.ErrKBUnchanged tells the server
// the image didn't change.
func (p *Puller) Load() (*remi.System, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tmp, hash, err := p.fetch()
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp) // no-op once renamed into place
	if p.loaded && hash == p.lastHash {
		return nil, server.ErrKBUnchanged
	}
	// Verify off to the side: a NoMmap open reads the whole image onto the
	// heap and runs every structural check (CRC, section bounds, ordering
	// invariants). The copy is dropped for the GC; only an image that
	// passed gets near the serving path.
	if _, err := kb.OpenSnapshotWith(tmp, kb.SnapshotOptions{NoMmap: true}); err != nil {
		return nil, fmt.Errorf("verifying pulled snapshot for KB %q: %w", p.name, err)
	}
	cur := p.CurrentPath()
	if err := os.Rename(tmp, cur); err != nil {
		return nil, fmt.Errorf("installing snapshot for KB %q: %w", p.name, err)
	}
	sys, err := remi.Load(cur)
	if err != nil {
		return nil, fmt.Errorf("opening installed snapshot for KB %q: %w", p.name, err)
	}
	p.lastHash = hash
	p.loaded = true
	return sys, nil
}

// fetch downloads the source into a temp file in the cache dir and
// returns its path plus the content hash of what's on disk. The
// fetch.corrupt fault point fires after the bytes arrive and flips one
// byte of the temp file, so what a test exercises is the real checksum
// rejection downstream, not a simulated error.
func (p *Puller) fetch() (tmpPath, hash string, err error) {
	if err := os.MkdirAll(p.cacheDir, 0o755); err != nil {
		return "", "", err
	}
	tmp, err := os.CreateTemp(p.cacheDir, "."+p.name+".pull-*")
	if err != nil {
		return "", "", err
	}
	defer func() {
		tmp.Close()
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()

	src, rd, err := p.open(ctx)
	if err != nil {
		return "", "", err
	}
	defer rd.Close()
	if _, err = io.Copy(tmp, rd); err != nil {
		return "", "", fmt.Errorf("pulling %s: %w", src, err)
	}
	if ferr := faults.Fire(ctx, faults.FetchCorrupt); ferr != nil {
		if err = flipByte(tmp); err != nil {
			return "", "", err
		}
	}
	if _, err = tmp.Seek(0, io.SeekStart); err != nil {
		return "", "", err
	}
	h := sha256.New()
	if _, err = io.Copy(h, tmp); err != nil {
		return "", "", err
	}
	if err = tmp.Close(); err != nil {
		return "", "", err
	}
	return tmp.Name(), hex.EncodeToString(h.Sum(nil)), nil
}

// open resolves the source into a byte stream: URL, directory, or file.
func (p *Puller) open(ctx context.Context) (string, io.ReadCloser, error) {
	src := p.source
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		if strings.HasSuffix(src, "/") {
			src += p.name + ".snap"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, src, nil)
		if err != nil {
			return src, nil, err
		}
		resp, err := p.client.Do(req)
		if err != nil {
			return src, nil, fmt.Errorf("pulling %s: %w", src, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return src, nil, fmt.Errorf("pulling %s: source answered %s", src, resp.Status)
		}
		return src, resp.Body, nil
	}
	if fi, err := os.Stat(src); err == nil && fi.IsDir() {
		src = filepath.Join(src, p.name+".snap")
	}
	f, err := os.Open(src)
	if err != nil {
		return src, nil, fmt.Errorf("pulling %s: %w", src, err)
	}
	return src, f, nil
}

// flipByte inverts the middle byte of the file — the minimal torn-transfer
// model: size unchanged, checksum broken.
func flipByte(f *os.File) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() == 0 {
		return fmt.Errorf("pulled snapshot is empty")
	}
	off := fi.Size() / 2
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], off)
	return err
}
