package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/server/faults"
)

// scriptReplica is a controllable fake remi-serve instance: by default it
// answers /readyz ready and everything else 200 with a body naming itself,
// recording the tier headers it received; tests script failures by
// swapping in a custom handler.
type scriptReplica struct {
	name string
	ts   *httptest.Server

	hits       atomic.Int64 // non-probe requests served
	lastReqID  atomic.Value // string
	lastBudget atomic.Value // string
	custom     atomic.Value // http.HandlerFunc; handles every path when set
}

func (f *scriptReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Drain the body like a real handler parsing JSON would — the server
	// only watches for client aborts once the body is consumed, and the
	// hedge tests assert that cancelled stragglers notice.
	_, _ = io.Copy(io.Discard, r.Body)
	if h, ok := f.custom.Load().(http.HandlerFunc); ok && h != nil {
		if r.URL.Path != "/readyz" {
			f.hits.Add(1)
		}
		h(w, r)
		return
	}
	if r.URL.Path == "/readyz" {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	f.hits.Add(1)
	f.lastReqID.Store(r.Header.Get(HeaderRequestID))
	f.lastBudget.Store(r.Header.Get(HeaderTimeoutBudget))
	writeJSON(w, http.StatusOK, map[string]any{"replica": f.name})
}

func (f *scriptReplica) script(h http.HandlerFunc) { f.custom.Store(h) }

func (f *scriptReplica) lastID() string {
	s, _ := f.lastReqID.Load().(string)
	return s
}

func newFleet(t *testing.T, names ...string) []*scriptReplica {
	t.Helper()
	fleet := make([]*scriptReplica, len(names))
	for i, name := range names {
		f := &scriptReplica{name: name}
		f.ts = httptest.NewServer(f)
		t.Cleanup(f.ts.Close)
		fleet[i] = f
	}
	return fleet
}

func fleetReplicas(fleet []*scriptReplica) []Replica {
	reps := make([]Replica, len(fleet))
	for i, f := range fleet {
		reps[i] = Replica{Name: f.name, URL: f.ts.URL}
	}
	return reps
}

// fastOpts keeps retries and probes snappy so tests don't sleep through
// production-scale backoffs. Hedging is off unless a test turns it on.
func fastOpts() Options {
	return Options{
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		HedgeDisabled:  true,
	}
}

func newTestRouter(t *testing.T, fleet []*scriptReplica, opts Options) *Router {
	t.Helper()
	rt, err := New(fleetReplicas(fleet), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func doRouted(rt *Router, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

const mineBody = `{"targets":["http://tiny.demo/resource/Rennes","http://tiny.demo/resource/Nantes"]}`

// servingReplica sends one request and reports which replica answered it —
// i.e. the key's healthy primary.
func servingReplica(t *testing.T, rt *Router, body string) string {
	t.Helper()
	rec := doRouted(rt, "POST", "/v1/mine", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("probe request failed: %d %s", rec.Code, rec.Body.String())
	}
	name := rec.Header().Get(HeaderReplica)
	if name == "" {
		t.Fatal("response carries no " + HeaderReplica)
	}
	return name
}

// ringPrimary names the key's true ring primary — from the ring, not from
// who happened to answer (a hedge can hand a healthy fleet's response to
// the backup).
func ringPrimary(t *testing.T, rt *Router, path, body string) string {
	t.Helper()
	req := httptest.NewRequest("POST", path, nil)
	key, _, status, err := rt.routeKey(req, []byte(body))
	if status != 0 {
		t.Fatalf("routeKey: %v", err)
	}
	return rt.ring.Primary(key)
}

func byName(fleet []*scriptReplica, name string) *scriptReplica {
	for _, f := range fleet {
		if f.name == name {
			return f
		}
	}
	return nil
}

func TestRouterPassThroughAndHeaders(t *testing.T) {
	fleet := newFleet(t, "r1", "r2", "r3")
	rt := newTestRouter(t, fleet, fastOpts())

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	serving := rec.Header().Get(HeaderReplica)
	if byName(fleet, serving) == nil {
		t.Fatalf("%s names unknown replica %q", HeaderReplica, serving)
	}
	if rec.Header().Get(HeaderRequestID) == "" {
		t.Fatal("router did not mint a request id")
	}
	// The serving replica saw the same id the client got back, and a
	// default budget (non-streaming request without an explicit one).
	srv := byName(fleet, serving)
	if srv.lastID() != rec.Header().Get(HeaderRequestID) {
		t.Fatalf("replica saw id %q, client got %q", srv.lastID(), rec.Header().Get(HeaderRequestID))
	}
	if b, _ := srv.lastBudget.Load().(string); b == "" {
		t.Fatal("replica received no timeout budget for a non-streaming request")
	}

	// A client-supplied id passes through both tiers untouched.
	rec = doRouted(rt, "POST", "/v1/mine", mineBody, map[string]string{HeaderRequestID: "trace-42"})
	if got := rec.Header().Get(HeaderRequestID); got != "trace-42" {
		t.Fatalf("client-supplied request id came back as %q", got)
	}
}

func TestRouterAffinityIsStable(t *testing.T) {
	fleet := newFleet(t, "r1", "r2", "r3")
	rt := newTestRouter(t, fleet, fastOpts())
	first := servingReplica(t, rt, mineBody)
	for i := 0; i < 5; i++ {
		if got := servingReplica(t, rt, mineBody); got != first {
			t.Fatalf("identical query moved from %q to %q with a healthy fleet", first, got)
		}
	}
}

func TestRouterFailoverOnPrimaryFailure(t *testing.T) {
	cases := []struct {
		name   string
		fail   http.HandlerFunc
		minTry int64
	}{
		{"http 500", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "boom"})
		}, 1},
		{"bare 503", func(w http.ResponseWriter, r *http.Request) {
			// No Retry-After: an instance-local refusal, e.g. draining.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "draining"})
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fleet := newFleet(t, "r1", "r2", "r3")
			rt := newTestRouter(t, fleet, fastOpts())
			primary := servingReplica(t, rt, mineBody)
			byName(fleet, primary).script(tc.fail)

			rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("failover did not produce an answer: %d %s", rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get(HeaderReplica); got == primary {
				t.Fatalf("response still served by failed primary %q", got)
			}
			st := rt.Stats()
			if st.Failovers < 1 || st.Retries < tc.minTry {
				t.Fatalf("stats do not reflect the failover: %+v", st)
			}
		})
	}
}

func TestRouterFailoverOnTransportError(t *testing.T) {
	fleet := newFleet(t, "r1", "r2", "r3")
	rt := newTestRouter(t, fleet, fastOpts())
	primary := servingReplica(t, rt, mineBody)
	// Kill the primary's listener outright — but tell the router's health
	// view nothing: the breaker path has to absorb it.
	byName(fleet, primary).ts.Close()

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderReplica); got == primary {
		t.Fatalf("dead replica %q apparently answered", got)
	}
}

// The conformance rows: statuses that must pass through unchanged rather
// than trigger retries — hints and client errors are the replica's answer,
// not a router failure.
func TestRouterPassThroughStatuses(t *testing.T) {
	rows := []struct {
		name       string
		status     int
		retryAfter string
		wantStatus int
	}{
		{"429 with Retry-After", http.StatusTooManyRequests, "7", http.StatusTooManyRequests},
		{"503 with Retry-After", http.StatusServiceUnavailable, "3", http.StatusServiceUnavailable},
		{"504 budget exceeded", http.StatusGatewayTimeout, "", http.StatusGatewayTimeout},
		{"404 not found", http.StatusNotFound, "", http.StatusNotFound},
		{"400 bad request", http.StatusBadRequest, "", http.StatusBadRequest},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			fleet := newFleet(t, "only")
			fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
				if row.retryAfter != "" {
					w.Header().Set("Retry-After", row.retryAfter)
				}
				w.Header().Set("X-Conformance", "yes")
				writeJSON(w, row.status, map[string]any{"error": "scripted"})
			})
			rt := newTestRouter(t, fleet, fastOpts())
			rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
			if rec.Code != row.wantStatus {
				t.Fatalf("status %d, want %d: %s", rec.Code, row.wantStatus, rec.Body.String())
			}
			if got := rec.Header().Get("Retry-After"); got != row.retryAfter {
				t.Fatalf("Retry-After = %q, want %q passed through", got, row.retryAfter)
			}
			if rec.Header().Get("X-Conformance") != "yes" {
				t.Fatal("replica response headers were not passed through")
			}
			if n := fleet[0].hits.Load(); n != 1 {
				t.Fatalf("replica was hit %d times; pass-through statuses must not retry", n)
			}
		})
	}
}

func TestRouterRetriesExhaustedAnswer502(t *testing.T) {
	fleet := newFleet(t, "only")
	fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "boom"})
	})
	opts := fastOpts()
	opts.MaxAttempts = 2
	rt := newTestRouter(t, fleet, opts)

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, map[string]string{HeaderRequestID: "give-up"})
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", rec.Code, rec.Body.String())
	}
	if n := fleet[0].hits.Load(); n != 2 {
		t.Fatalf("replica hit %d times, want MaxAttempts=2", n)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %s", rec.Body.String())
	}
	if body.RequestID != "give-up" || body.Error == "" {
		t.Fatalf("error body lost the trace: %+v", body)
	}
}

func TestRouterTimeoutBudget(t *testing.T) {
	fleet := newFleet(t, "slow")
	fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"replica": "slow"})
	})
	opts := fastOpts()
	opts.MaxAttempts = 2
	rt := newTestRouter(t, fleet, opts)

	start := time.Now()
	rec := doRouted(rt, "POST", "/v1/mine", mineBody, map[string]string{HeaderTimeoutBudget: "80"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("router waited %v; the 80ms budget did not bound the walk", el)
	}
}

func TestRouterBodyLimits(t *testing.T) {
	fleet := newFleet(t, "r1")
	opts := fastOpts()
	opts.MaxBodyBytes = 256
	rt := newTestRouter(t, fleet, opts)

	big := `{"targets":["` + strings.Repeat("a", 512) + `"]}`
	if rec := doRouted(rt, "POST", "/v1/mine", big, nil); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
	if rec := doRouted(rt, "POST", "/v1/mine", `{"targets":`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("unparseable body: status %d, want 400", rec.Code)
	}
	if n := fleet[0].hits.Load(); n != 0 {
		t.Fatalf("invalid requests were forwarded %d times", n)
	}
}

func TestRouterLocalEndpoints(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	rt := newTestRouter(t, fleet, fastOpts())

	rec := doRouted(rt, "GET", "/healthz", "", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"role":"router"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doRouted(rt, "GET", "/readyz", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz with healthy fleet: %d", rec.Code)
	}
	rec = doRouted(rt, "GET", "/router/stats", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 || st.Replicas["r1"].Breaker != "closed" {
		t.Fatalf("stats body: %+v", st)
	}
}

func TestRouterFleetDown(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	rt := newTestRouter(t, fleet, fastOpts())
	for _, f := range fleet {
		f.ts.Close()
	}
	rt.ProbeNow(context.Background())

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("fleet-down 503 carries no Retry-After")
	}
	if rec := doRouted(rt, "GET", "/readyz", "", nil); rec.Code != http.StatusServiceUnavailable ||
		rec.Header().Get("Retry-After") == "" {
		t.Fatalf("readyz with dead fleet: %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if st := rt.Stats(); st.FleetUnavailable < 1 || st.Replicas["r1"].Healthy {
		t.Fatalf("stats do not reflect the dead fleet: %+v", st)
	}
}

func TestRouterAllBreakersOpen(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	opts := fastOpts()
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Minute
	rt := newTestRouter(t, fleet, opts)
	for _, rep := range rt.replicas {
		rep.breaker.Report(false)
		rep.breaker.Report(false)
	}
	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("breakers-open 503 carries no Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "circuit breakers") {
		t.Fatalf("error body: %s", rec.Body.String())
	}
}

func TestRouterHedgeWin(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	opts := fastOpts()
	opts.HedgeDisabled = false
	opts.HedgeDelay = 5 * time.Millisecond
	rt := newTestRouter(t, fleet, opts)
	primary := ringPrimary(t, rt, "/v1/mine", mineBody)
	primaryCancelled := make(chan struct{}, 1)
	byName(fleet, primary).script(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(3 * time.Second):
			writeJSON(w, http.StatusOK, map[string]any{"replica": "slow-primary"})
		case <-r.Context().Done():
			select {
			case primaryCancelled <- struct{}{}:
			default:
			}
		}
	})

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderReplica); got == primary {
		t.Fatalf("hedged response still claims the slow primary %q", got)
	}
	st := rt.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedge counters not bumped: %+v", st)
	}
	// The straggler's context must be cancelled so the fleet doesn't finish
	// work nobody will read.
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("slow primary's request context was never cancelled")
	}
}

func TestRouterHedgeSettlesOnSecondWhenFirstFails(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	opts := fastOpts()
	opts.HedgeDisabled = false
	opts.HedgeDelay = 2 * time.Millisecond
	rt := newTestRouter(t, fleet, opts)
	primary := ringPrimary(t, rt, "/v1/mine", mineBody)
	byName(fleet, primary).script(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond) // past the hedge trigger, then fail
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "boom"})
	})
	backupName := ""
	for _, f := range fleet {
		if f.name != primary {
			backupName = f.name
			f.script(func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(60 * time.Millisecond) // slower than the failing primary
				writeJSON(w, http.StatusOK, map[string]any{"replica": f.name})
			})
		}
	}

	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderReplica); got != backupName {
		t.Fatalf("served by %q, want the hedge backup %q", got, backupName)
	}
}

func TestRouterHedgeRespectsBackupBreaker(t *testing.T) {
	fleet := newFleet(t, "r1", "r2")
	opts := fastOpts()
	opts.HedgeDisabled = false
	opts.HedgeDelay = time.Millisecond
	opts.BreakerCooldown = time.Minute
	rt := newTestRouter(t, fleet, opts)
	primary := ringPrimary(t, rt, "/v1/mine", mineBody)
	byName(fleet, primary).script(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond)
		writeJSON(w, http.StatusOK, map[string]any{"replica": primary})
	})
	for _, rep := range rt.replicas {
		if rep.name != primary {
			for i := 0; i < rt.opts.BreakerThreshold; i++ {
				rep.breaker.Report(false)
			}
		}
	}

	before := rt.Stats().Hedges
	rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderReplica); got != primary {
		t.Fatalf("served by %q, want the slow primary (backup breaker is open)", got)
	}
	if after := rt.Stats().Hedges; after != before {
		t.Fatalf("a hedge was launched through an open breaker (%d -> %d)", before, after)
	}
}

func TestRouterJobFanOut(t *testing.T) {
	job := `{"id":"j-1","state":"done","kind":"mine"}`
	notFound := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "no such job"})
	}

	t.Run("found on a non-primary replica", func(t *testing.T) {
		fleet := newFleet(t, "r1", "r2")
		fleet[0].script(notFound)
		fleet[1].script(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, job)
		})
		rt := newTestRouter(t, fleet, fastOpts())
		rec := doRouted(rt, "GET", "/v1/jobs/j-1", "", nil)
		if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"id":"j-1"`) {
			t.Fatalf("fan-out missed the owning replica: %d %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get(HeaderReplica); got != "r2" {
			t.Fatalf("served by %q, want r2", got)
		}
	})

	t.Run("every replica disclaims", func(t *testing.T) {
		fleet := newFleet(t, "r1", "r2")
		fleet[0].script(notFound)
		fleet[1].script(notFound)
		rt := newTestRouter(t, fleet, fastOpts())
		rec := doRouted(rt, "GET", "/v1/jobs/gone", "", nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("status %d, want the 404 passed through", rec.Code)
		}
	})

	t.Run("a failing replica is skipped", func(t *testing.T) {
		fleet := newFleet(t, "r1", "r2")
		fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": "boom"})
		})
		fleet[1].script(notFound)
		rt := newTestRouter(t, fleet, fastOpts())
		rec := doRouted(rt, "GET", "/v1/jobs/j-2", "", nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404 from the surviving replica", rec.Code)
		}
	})

	t.Run("no healthy replicas", func(t *testing.T) {
		fleet := newFleet(t, "r1")
		fleet[0].ts.Close()
		rt := newTestRouter(t, fleet, fastOpts())
		rt.ProbeNow(context.Background())
		rec := doRouted(rt, "GET", "/v1/jobs/j-3", "", nil)
		if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
			t.Fatalf("status %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
		}
	})
}

func TestRouterStreamingPassThrough(t *testing.T) {
	fleet := newFleet(t, "r1")
	fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		f := w.(http.Flusher)
		fmt.Fprintln(w, `{"event":"progress","expression":"a"}`)
		f.Flush()
		fmt.Fprintln(w, `{"event":"done"}`)
		f.Flush()
	})
	rt := newTestRouter(t, fleet, fastOpts())
	rec := doRouted(rt, "POST", "/v1/mine:stream", mineBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); !strings.Contains(got, "ndjson") {
		t.Fatalf("Content-Type = %q", got)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "done") {
		t.Fatalf("stream body: %q", rec.Body.String())
	}
}

func TestRouteKeyAffinity(t *testing.T) {
	rt := newTestRouter(t, newFleet(t, "r1"), fastOpts())
	key := func(method, path, body string) string {
		req := httptest.NewRequest(method, path, nil)
		k, _, status, err := rt.routeKey(req, []byte(body))
		if status != 0 {
			t.Fatalf("routeKey(%s %s): %v", method, path, err)
		}
		return k
	}

	// One query's sync, async and stream forms share affinity, target order
	// and duplicates notwithstanding.
	sync := key("POST", "/v1/mine", `{"targets":["b","a"]}`)
	if async := key("POST", "/v1/mine:async", `{"targets":["a","b","a"]}`); async != sync {
		t.Fatalf("sync and async forms of one query keyed apart: %q vs %q", sync, async)
	}
	if stream := key("POST", "/v1/mine:stream", `{"targets":["a","b"]}`); stream != sync {
		t.Fatalf("stream form keyed apart: %q", stream)
	}

	// The KB travels in the key whether it arrives as a path prefix or a
	// body field.
	inPath := key("POST", "/v1/kb/geo/mine", `{"targets":["a"]}`)
	inBody := key("POST", "/v1/mine", `{"targets":["a"],"kb":"geo"}`)
	if inPath != inBody {
		t.Fatalf("kb-in-path and kb-in-body keyed apart: %q vs %q", inPath, inBody)
	}
	if other := key("POST", "/v1/mine", `{"targets":["a"],"kb":"other"}`); other == inBody {
		t.Fatal("different KBs share a key")
	}

	// Options and shapes that change the result change the key.
	if key("POST", "/v1/mine", `{"targets":["a"],"top_k":3}`) == sync {
		t.Fatal("top_k did not affect the key")
	}
	if key("POST", "/v1/mine:batch", `{"sets":[["a"],["b"]]}`) == key("POST", "/v1/mine:batch", `{"sets":[["a","b"]]}`) {
		t.Fatal("set structure did not affect the key")
	}
	if key("POST", "/v1/summarize", `{"entity":"x","size":3}`) == key("POST", "/v1/summarize", `{"entity":"x","size":5}`) {
		t.Fatal("summary size did not affect the key")
	}

	// GETs key on path + canonical query: parameter order is irrelevant,
	// values are not.
	a := key("GET", "/v1/describe?entity=x&metric=fr", "")
	if b := key("GET", "/v1/describe?metric=fr&entity=x", ""); a != b {
		t.Fatalf("query order changed a GET key: %q vs %q", a, b)
	}
	if c := key("GET", "/v1/describe?entity=y&metric=fr", ""); a == c {
		t.Fatal("different GET queries share a key")
	}

	// Stream detection follows the KB prefix strip.
	req := httptest.NewRequest("POST", "/v1/kb/geo/mine:stream", nil)
	if _, stream, _, _ := rt.routeKey(req, []byte(`{"targets":["a"]}`)); !stream {
		t.Fatal("kb-prefixed stream path not detected as streaming")
	}

	// A body that does not parse is the client's error, not a routing one.
	badReq := httptest.NewRequest("POST", "/v1/mine", nil)
	if _, _, status, err := rt.routeKey(badReq, []byte(`{"targets":`)); status != http.StatusBadRequest || err == nil {
		t.Fatalf("bad JSON: status %d, err %v", status, err)
	}
}

func TestClientBudget(t *testing.T) {
	req := httptest.NewRequest("POST", "/v1/mine", nil)
	if got := clientBudget(req, false, time.Minute); got != time.Minute {
		t.Fatalf("default budget = %v", got)
	}
	if got := clientBudget(req, true, time.Minute); got != 0 {
		t.Fatalf("stream without explicit budget = %v, want unbounded", got)
	}
	req.Header.Set(HeaderTimeoutBudget, "250")
	if got := clientBudget(req, false, time.Minute); got != 250*time.Millisecond {
		t.Fatalf("explicit budget = %v", got)
	}
	if got := clientBudget(req, true, time.Minute); got != 250*time.Millisecond {
		t.Fatalf("explicit budget on a stream = %v", got)
	}
	req.Header.Set(HeaderTimeoutBudget, "garbage")
	if got := clientBudget(req, false, time.Minute); got != time.Minute {
		t.Fatalf("unparseable budget fell through to %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New([]Replica{{Name: "", URL: "http://x"}}, Options{}); err == nil {
		t.Fatal("unnamed replica accepted")
	}
	if _, err := New([]Replica{{Name: "a", URL: ""}}, Options{}); err == nil {
		t.Fatal("URL-less replica accepted")
	}
	if _, err := New([]Replica{
		{Name: "a", URL: "http://x"},
		{Name: "a", URL: "http://y"},
	}, Options{}); err == nil {
		t.Fatal("duplicate replica name accepted")
	}
}

func TestProbeHealthTransitions(t *testing.T) {
	fleet := newFleet(t, "r1")
	rt := newTestRouter(t, fleet, fastOpts())
	ctx := context.Background()

	rt.ProbeNow(ctx)
	if st := rt.Stats().Replicas["r1"]; !st.Healthy || st.Degraded {
		t.Fatalf("ready replica probed as %+v", st)
	}

	// Degraded but serving: stays routable, surfaces in stats.
	fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "degraded": true})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"replica": "r1"})
	})
	rt.ProbeNow(ctx)
	if st := rt.Stats().Replicas["r1"]; !st.Healthy || !st.Degraded {
		t.Fatalf("degraded replica probed as %+v", st)
	}
	if rec := doRouted(rt, "POST", "/v1/mine", mineBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("degraded replica dropped from routing: %d", rec.Code)
	}

	// Draining (503 from /readyz): out of routing.
	fleet[0].script(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	})
	rt.ProbeNow(ctx)
	if st := rt.Stats().Replicas["r1"]; st.Healthy || st.ProbeFailures < 1 || st.LastProbeError == "" {
		t.Fatalf("draining replica probed as %+v", st)
	}

	// Recovered: back in.
	fleet[0].script(nil)
	rt.ProbeNow(ctx)
	if st := rt.Stats().Replicas["r1"]; !st.Healthy {
		t.Fatalf("recovered replica probed as %+v", st)
	}
}

func TestProbeTimeoutFault(t *testing.T) {
	fleet := newFleet(t, "r1")
	rt := newTestRouter(t, fleet, fastOpts())
	ctx := context.Background()

	disarm := faults.Arm(faults.ProbeTimeout, faults.Injection{Err: errors.New("injected probe failure")})
	rt.ProbeNow(ctx)
	if hits := faults.Hits(faults.ProbeTimeout); hits < 1 {
		t.Fatal("probe.timeout point never fired; the hook is not wired in")
	}
	if st := rt.Stats().Replicas["r1"]; st.Healthy || !strings.Contains(st.LastProbeError, "injected") {
		t.Fatalf("wedged probe left replica %+v", st)
	}
	disarm()

	rt.ProbeNow(ctx)
	if st := rt.Stats().Replicas["r1"]; !st.Healthy {
		t.Fatalf("replica did not recover after probes resumed: %+v", st)
	}
}

func TestStartProbingNoticesDeath(t *testing.T) {
	fleet := newFleet(t, "r1")
	opts := fastOpts()
	opts.ProbeInterval = 5 * time.Millisecond
	rt := newTestRouter(t, fleet, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.StartProbing(ctx)

	fleet[0].ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !rt.Stats().Replicas["r1"].Healthy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background prober never noticed the dead replica")
}
