package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/server"
	"github.com/remi-kb/remi/internal/server/faults"
)

// chaosHarness is a full in-process fleet: n real remi-serve servers over
// the shared tiny KB behind one router, the same stack docker-compose runs
// minus the sockets.
type chaosHarness struct {
	router   *Router
	servers  []*server.Server
	backends []*httptest.Server
}

func newChaosHarness(t *testing.T, n int, opts Options) *chaosHarness {
	t.Helper()
	sys := tinySystem(t)
	h := &chaosHarness{}
	reps := make([]Replica, n)
	for i := 0; i < n; i++ {
		srv := server.New(sys, server.Options{DefaultTimeout: 10 * time.Second})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(ts.Close)
		h.servers = append(h.servers, srv)
		h.backends = append(h.backends, ts)
		reps[i] = Replica{Name: "r" + string(rune('1'+i)), URL: ts.URL}
	}
	rt, err := New(reps, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.router = rt
	return h
}

func (h *chaosHarness) post(t *testing.T, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
	h.router.ServeHTTP(rec, req)
	return rec
}

// canonMine strips the run-dependent fields of a mine response — phase
// timings, evaluator cache counters, dedup/cache provenance — and returns
// the deterministic remainder re-marshalled, so two runs of one query
// compare byte-identical iff they found the same answer.
func canonMine(t *testing.T, body []byte) []byte {
	t.Helper()
	var m server.MineResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding mine response %q: %v", body, err)
	}
	m.Stats = server.MineStats{}
	m.Deduplicated, m.Cached = false, false
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// canonBatch is canonMine for batch responses.
func canonBatch(t *testing.T, body []byte) []byte {
	t.Helper()
	var b server.BatchMineResponse
	if err := json.Unmarshal(body, &b); err != nil {
		t.Fatalf("decoding batch response %q: %v", body, err)
	}
	b.Stats = server.BatchMineStats{}
	for i := range b.Results {
		if r := b.Results[i].Response; r != nil {
			r.Stats = server.MineStats{}
			r.Deduplicated, r.Cached = false, false
		}
	}
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const (
	chaosMine  = `{"targets":["http://tiny.demo/resource/Rennes","http://tiny.demo/resource/Nantes"]}`
	chaosMine2 = `{"targets":["http://tiny.demo/resource/Paris"]}`
	chaosBatch = `{"sets":[["http://tiny.demo/resource/Rennes","http://tiny.demo/resource/Nantes"],["http://tiny.demo/resource/Paris"]]}`
)

// goldenAnswers mines the chaos queries on a plain single-node server —
// no router, no faults — and returns their canonical bodies.
func goldenAnswers(t *testing.T) (mine, mine2, batch []byte) {
	t.Helper()
	srv := server.New(tinySystem(t), server.Options{DefaultTimeout: 10 * time.Second})
	t.Cleanup(srv.Close)
	h := srv.Handler()
	run := func(path, body string) []byte {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader([]byte(body))))
		if rec.Code != http.StatusOK {
			t.Fatalf("golden %s: %d %s", path, rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}
	return canonMine(t, run("/v1/mine", chaosMine)),
		canonMine(t, run("/v1/mine", chaosMine2)),
		canonBatch(t, run("/v1/mine:batch", chaosBatch))
}

// A dead primary mid-traffic — single mines and a batch — must be invisible
// to clients: every retried answer is byte-identical (canonicalized) to
// what a healthy single-node server mines.
func TestChaosPrimaryDownGoldenAnswers(t *testing.T) {
	goldMine, goldMine2, goldBatch := goldenAnswers(t)
	h := newChaosHarness(t, 3, Options{
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		HedgeDisabled:  true,
	})

	disarm := faults.Arm(faults.ReplicaDown, faults.Injection{Err: errors.New("injected: replica down")})
	defer disarm()

	for _, q := range []struct {
		path, body string
		canon      func(*testing.T, []byte) []byte
		golden     []byte
	}{
		{"/v1/mine", chaosMine, canonMine, goldMine},
		{"/v1/mine", chaosMine2, canonMine, goldMine2},
		{"/v1/mine:batch", chaosBatch, canonBatch, goldBatch},
	} {
		rec := h.post(t, q.path, q.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s with primary down: %d %s", q.path, rec.Code, rec.Body.String())
		}
		if got := q.canon(t, rec.Body.Bytes()); !bytes.Equal(got, q.golden) {
			t.Fatalf("%s answer diverged from single-node golden:\n got  %s\n want %s", q.path, got, q.golden)
		}
	}
	if hits := faults.Hits(faults.ReplicaDown); hits < 3 {
		t.Fatalf("replica.down fired %d times, want one per query's primary attempt", hits)
	}
	if st := h.router.Stats(); st.Failovers < 3 {
		t.Fatalf("failovers = %d, want every query failed over: %+v", st.Failovers, st)
	}
}

// A slow primary must lose to a hedged second request, and the hedged
// answer must match the golden one.
func TestChaosSlowPrimaryHedged(t *testing.T) {
	goldMine, _, _ := goldenAnswers(t)
	h := newChaosHarness(t, 3, Options{
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		HedgeDelay:     10 * time.Millisecond,
	})

	disarm := faults.Arm(faults.ReplicaSlow, faults.Injection{Delay: 2 * time.Second})
	defer disarm()

	start := time.Now()
	rec := h.post(t, "/v1/mine", chaosMine)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged mine: %d %s", rec.Code, rec.Body.String())
	}
	if el := time.Since(start); el > 1500*time.Millisecond {
		t.Fatalf("answer took %v; the hedge did not beat the 2s-slow primary", el)
	}
	if got := canonMine(t, rec.Body.Bytes()); !bytes.Equal(got, goldMine) {
		t.Fatalf("hedged answer diverged from golden:\n got  %s\n want %s", got, goldMine)
	}
	st := h.router.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedge counters not bumped: %+v", st)
	}
	if faults.Hits(faults.ReplicaSlow) < 1 {
		t.Fatal("replica.slow never fired")
	}
}

// A corrupt snapshot pull must leave the replica serving its last-known-good
// generation while the router's stats surface it as degraded.
func TestChaosCorruptPullLastKnownGood(t *testing.T) {
	goldMine, _, _ := goldenAnswers(t)
	src := tinySnapshot(t, t.TempDir(), server.DefaultKBName)
	p := NewPuller(server.DefaultKBName, src, t.TempDir())
	sys, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Options{DefaultTimeout: 10 * time.Second})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	rt, err := New([]Replica{{Name: "r1", URL: ts.URL}}, Options{HedgeDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeNow(t.Context())
	if st := rt.Stats().Replicas["r1"]; !st.Healthy || st.Degraded {
		t.Fatalf("fresh replica probed as %+v", st)
	}

	disarm := faults.Arm(faults.FetchCorrupt, faults.Injection{Err: errors.New("armed")})
	defer disarm()
	if err := srv.ReloadKB(server.DefaultKBName, p.Load); err == nil {
		t.Fatal("reload from a corrupt pull succeeded")
	}

	// The router sees the degradation on its next probe; the replica stays
	// in rotation and still answers the golden result from its
	// last-known-good generation.
	rt.ProbeNow(t.Context())
	if st := rt.Stats().Replicas["r1"]; !st.Healthy || !st.Degraded {
		t.Fatalf("replica after corrupt pull probed as %+v, want healthy+degraded", st)
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/mine", bytes.NewReader([]byte(chaosMine))))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded replica: %d %s", rec.Code, rec.Body.String())
	}
	if got := canonMine(t, rec.Body.Bytes()); !bytes.Equal(got, goldMine) {
		t.Fatalf("last-known-good answer diverged from golden:\n got  %s\n want %s", got, goldMine)
	}
}

// After K consecutive primary failures the primary's breaker opens (traffic
// stops probing it per-request), and once the fault clears a half-open
// trial folds it back in.
func TestChaosBreakerLifecycle(t *testing.T) {
	h := newChaosHarness(t, 2, Options{
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    2 * time.Millisecond,
		HedgeDisabled:    true,
	})
	primaryName := h.router.ring.Primary(func() string {
		req := httptest.NewRequest("POST", "/v1/mine", nil)
		k, _, _, _ := h.router.routeKey(req, []byte(chaosMine))
		return k
	}())

	disarm := faults.Arm(faults.ReplicaDown, faults.Injection{Err: errors.New("injected: replica down")})
	for i := 0; i < 3; i++ {
		if rec := h.post(t, "/v1/mine", chaosMine); rec.Code != http.StatusOK {
			disarm()
			t.Fatalf("request %d with primary down: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if st := h.router.Stats().Replicas[primaryName]; st.Breaker != "open" {
		disarm()
		t.Fatalf("primary breaker = %q after repeated failures, want open", st.Breaker)
	}
	disarm()

	// Past the cooldown a half-open trial succeeds and the breaker closes.
	time.Sleep(150 * time.Millisecond)
	if rec := h.post(t, "/v1/mine", chaosMine); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery request: %d %s", rec.Code, rec.Body.String())
	}
	if st := h.router.Stats().Replicas[primaryName]; st.Breaker != "closed" {
		t.Fatalf("primary breaker = %q after recovery, want closed", st.Breaker)
	}
}
