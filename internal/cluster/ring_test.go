package cluster

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica%d", i+1)
	}
	return names
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("kb\x00key-%d|fr|remi|0|0|0|0", i)
	}
	return keys
}

// Two routers configured with the same replica set must agree on every
// key, whatever order their -replica flags arrived in.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	names := ringNames(5)
	ref := NewRing(names, 0)
	keys := ringKeys(200)

	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 0)
		for _, k := range keys {
			want, got := ref.Sequence(k), r.Sequence(k)
			if len(want) != len(got) {
				t.Fatalf("sequence length differs for %q: %v vs %v", k, want, got)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d: sequence differs for %q: %v vs %v", trial, k, want, got)
				}
			}
		}
	}
}

func TestRingSequenceCoversAllMembersOnce(t *testing.T) {
	names := ringNames(7)
	r := NewRing(names, 0)
	for _, k := range ringKeys(100) {
		seq := r.Sequence(k)
		if len(seq) != len(names) {
			t.Fatalf("sequence for %q has %d members, want %d: %v", k, len(seq), len(names), seq)
		}
		seen := make(map[string]bool, len(seq))
		for _, name := range seq {
			if seen[name] {
				t.Fatalf("member %q repeats in sequence for %q: %v", name, k, seq)
			}
			seen[name] = true
		}
		if r.Primary(k) != seq[0] {
			t.Fatalf("Primary(%q) = %q, want sequence head %q", k, r.Primary(k), seq[0])
		}
	}
}

// Removing one member must move only the keys that member owned — each to
// its next choice on the old ring — and leave every other key in place.
// This is the property that keeps replica result caches warm across
// membership changes.
func TestRingMinimalRebalance(t *testing.T) {
	names := ringNames(5)
	const removed = "replica3"
	full := NewRing(names, 0)
	var reduced []string
	for _, n := range names {
		if n != removed {
			reduced = append(reduced, n)
		}
	}
	smaller := NewRing(reduced, 0)

	keys := ringKeys(2000)
	moved := 0
	for _, k := range keys {
		seq := full.Sequence(k)
		before, after := seq[0], smaller.Primary(k)
		if before != removed {
			if after != before {
				t.Fatalf("key %q moved %q -> %q though %q stayed in the ring", k, before, after, before)
			}
			continue
		}
		moved++
		if after != seq[1] {
			t.Fatalf("key %q owned by removed member went to %q, want its old second choice %q", k, after, seq[1])
		}
	}
	// The removed member should have owned roughly 1/5 of the key space.
	if frac := float64(moved) / float64(len(keys)); frac < 0.08 || frac > 0.40 {
		t.Fatalf("removed member owned %.1f%% of keys; vnode spread is badly skewed", frac*100)
	}
}

func TestRingDistribution(t *testing.T) {
	names := ringNames(4)
	r := NewRing(names, 0)
	counts := make(map[string]int)
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	for _, n := range names {
		frac := float64(counts[n]) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %q owns %.1f%% of keys (counts %v); want a rough 25%% split", n, frac*100, counts)
		}
	}
}

func TestRingMembersSortedCopy(t *testing.T) {
	r := NewRing([]string{"b", "a", "c"}, 8)
	m := r.Members()
	if len(m) != 3 || m[0] != "a" || m[1] != "b" || m[2] != "c" {
		t.Fatalf("Members() = %v, want canonical sorted order", m)
	}
	m[0] = "mutated"
	if r.Members()[0] != "a" {
		t.Fatal("Members() exposed internal state")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if seq := r.Sequence("anything"); seq != nil {
		t.Fatalf("empty ring returned sequence %v", seq)
	}
	if p := r.Primary("anything"); p != "" {
		t.Fatalf("empty ring returned primary %q", p)
	}
}

func TestRingSingleMember(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	for _, k := range ringKeys(20) {
		if p := r.Primary(k); p != "solo" {
			t.Fatalf("single-member ring routed %q to %q", k, p)
		}
	}
}
