package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	remi "github.com/remi-kb/remi"
	"github.com/remi-kb/remi/internal/server"
	"github.com/remi-kb/remi/internal/server/faults"
)

var (
	tinyOnce sync.Once
	tinySys  *remi.System
	tinyErr  error
)

// tinySystem shares one generated demo KB across the package's tests
// (building it is the expensive part).
func tinySystem(t *testing.T) *remi.System {
	t.Helper()
	tinyOnce.Do(func() { tinySys, tinyErr = remi.GenerateDemo("tiny", 42, 0) })
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinySys
}

// tinySnapshot writes the shared demo KB as <dir>/<name>.snap and returns
// the file path.
func tinySnapshot(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name+".snap")
	if err := tinySystem(t).SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPullerFileSourceAndUnchanged(t *testing.T) {
	src := tinySnapshot(t, t.TempDir(), "geo")
	cache := t.TempDir()
	p := NewPuller("geo", src, cache)
	if p.Name() != "geo" {
		t.Fatalf("Name() = %q", p.Name())
	}

	sys, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumFacts() == 0 {
		t.Fatal("pulled system is empty")
	}
	if _, err := os.Stat(p.CurrentPath()); err != nil {
		t.Fatalf("no installed image at CurrentPath: %v", err)
	}

	// An identical re-pull is the benign no-op signal, not a reload.
	if _, err := p.Load(); !errors.Is(err, server.ErrKBUnchanged) {
		t.Fatalf("re-pull of identical image: %v, want ErrKBUnchanged", err)
	}
}

func TestPullerDirSource(t *testing.T) {
	dir := t.TempDir()
	tinySnapshot(t, dir, "geo")
	p := NewPuller("geo", dir, t.TempDir())
	if _, err := p.Load(); err != nil {
		t.Fatal(err)
	}
}

func TestPullerHTTPSource(t *testing.T) {
	dir := t.TempDir()
	tinySnapshot(t, dir, "geo")
	fs := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer fs.Close()

	t.Run("trailing slash appends name", func(t *testing.T) {
		p := NewPuller("geo", fs.URL+"/", t.TempDir())
		if _, err := p.Load(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("exact URL", func(t *testing.T) {
		p := NewPuller("geo", fs.URL+"/geo.snap", t.TempDir())
		if _, err := p.Load(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("missing image", func(t *testing.T) {
		p := NewPuller("absent", fs.URL+"/", t.TempDir())
		if _, err := p.Load(); err == nil || !strings.Contains(err.Error(), "answered") {
			t.Fatalf("404 pull: %v", err)
		}
	})
}

func TestPullerMissingFileSource(t *testing.T) {
	p := NewPuller("geo", filepath.Join(t.TempDir(), "nope.snap"), t.TempDir())
	if _, err := p.Load(); err == nil {
		t.Fatal("pull from a missing file succeeded")
	}
}

func TestPullerCorruptPullRejected(t *testing.T) {
	src := tinySnapshot(t, t.TempDir(), "geo")
	cache := t.TempDir()
	p := NewPuller("geo", src, cache)

	disarm := faults.Arm(faults.FetchCorrupt, faults.Injection{Err: errors.New("armed")})
	_, err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "verifying pulled snapshot") {
		disarm()
		t.Fatalf("corrupt pull: %v, want a verification rejection", err)
	}
	if faults.Hits(faults.FetchCorrupt) < 1 {
		disarm()
		t.Fatal("fetch.corrupt never fired; the hook is not wired into the pull path")
	}
	// Nothing installed, nothing left behind.
	entries, _ := os.ReadDir(cache)
	for _, e := range entries {
		t.Fatalf("corrupt pull left %q in the cache dir", e.Name())
	}
	disarm()

	// Healthy pull after the corruption clears.
	if _, err := p.Load(); err != nil {
		t.Fatal(err)
	}

	// A corrupt pull after a good one must not poison the unchanged-hash
	// shortcut: the flipped image hashes differently, fails verification,
	// and the next clean pull is recognized as unchanged.
	disarm = faults.Arm(faults.FetchCorrupt, faults.Injection{Err: errors.New("armed")})
	if _, err := p.Load(); err == nil {
		disarm()
		t.Fatal("corrupt re-pull succeeded")
	}
	disarm()
	if _, err := p.Load(); !errors.Is(err, server.ErrKBUnchanged) {
		t.Fatalf("clean re-pull after corruption: %v, want ErrKBUnchanged", err)
	}
}

func TestPullerEmptySource(t *testing.T) {
	src := filepath.Join(t.TempDir(), "empty.snap")
	if err := os.WriteFile(src, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPuller("empty", src, t.TempDir())
	if _, err := p.Load(); err == nil {
		t.Fatal("empty snapshot pulled successfully")
	}
	// With corruption armed the flip itself reports the empty file.
	disarm := faults.Arm(faults.FetchCorrupt, faults.Injection{Err: errors.New("armed")})
	defer disarm()
	if _, err := p.Load(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("corrupting an empty pull: %v", err)
	}
}

func TestPullerSourceUpdateReloads(t *testing.T) {
	srcDir := t.TempDir()
	src := tinySnapshot(t, srcDir, "geo")
	p := NewPuller("geo", src, t.TempDir())
	if _, err := p.Load(); err != nil {
		t.Fatal(err)
	}

	// Publish a different image at the source: the next pull must load it.
	// (The tiny dataset is seed-independent, so switch datasets outright.)
	other, err := remi.GenerateDemo("dbpedia", 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.SaveSnapshot(src); err != nil {
		t.Fatal(err)
	}
	sys, err := p.Load()
	if err != nil {
		t.Fatalf("pull of updated source: %v", err)
	}
	if sys == nil || sys.NumFacts() == 0 {
		t.Fatal("updated pull produced no system")
	}
}
