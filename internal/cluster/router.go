package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/remi-kb/remi/internal/server/faults"
)

// Wire headers of the routing tier. The router generates X-Request-Id when
// the client didn't send one and stamps it on both tiers' responses;
// X-Timeout-Budget-Ms carries the remaining client deadline so a replica
// never works past it (and retries never stack their own timeouts on top);
// X-Remi-Replica names the replica that actually served a routed response.
const (
	HeaderRequestID     = "X-Request-Id"
	HeaderTimeoutBudget = "X-Timeout-Budget-Ms"
	HeaderReplica       = "X-Remi-Replica"
)

// Replica names one remi-serve instance the router forwards to.
type Replica struct {
	// Name identifies the replica in the ring, stats and headers; it must
	// be unique and stable across router restarts (ring placement hashes
	// it).
	Name string
	// URL is the replica's base URL, e.g. http://10.0.0.3:8080.
	URL string
}

// Options tunes the router. The zero value picks the documented defaults.
type Options struct {
	// Vnodes per replica on the hash ring (default 128).
	Vnodes int
	// ProbeInterval is the /readyz probe cadence (default 2s);
	// ProbeTimeout bounds each probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerThreshold consecutive failures open a replica's circuit
	// breaker (default 3); BreakerCooldown is how long it stays open
	// before a half-open trial (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxAttempts bounds the total forwards per request, first try
	// included (default 3).
	MaxAttempts int
	// RetryBaseDelay seeds the exponential backoff between attempts
	// (default 25ms, doubling, jittered, capped at RetryMaxDelay, default
	// 500ms).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HedgeDelay controls the hedged second request: 0 derives the delay
	// from the EWMA latency p99 (with HedgeFallback, default 100ms, until
	// enough samples arrive), a positive value fixes it, and
	// HedgeDisabled turns hedging off.
	HedgeDelay    time.Duration
	HedgeFallback time.Duration
	HedgeDisabled bool
	// DefaultTimeout is the budget applied to non-streaming requests that
	// carry no X-Timeout-Budget-Ms of their own (default 60s). Streaming
	// requests without a budget run unbounded — a deadline mid-stream
	// would cut legitimate long-running mines.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps the buffered request body (default 1 MiB); larger
	// bodies answer 413.
	MaxBodyBytes int64
	// Transport overrides the forwarding round-tripper (tests).
	Transport http.RoundTripper
}

func (o *Options) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 25 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 500 * time.Millisecond
	}
	if o.HedgeFallback <= 0 {
		o.HedgeFallback = 100 * time.Millisecond
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
}

// replica is the runtime state the router keeps per configured Replica.
type replica struct {
	name    string
	base    string // URL with no trailing slash
	breaker *Breaker

	mu         atomicHealth
	forwards   atomic.Int64
	failures   atomic.Int64
	probeFails atomic.Int64
}

// atomicHealth folds the probe outcome into one word so forwards read it
// without a lock: bit 0 healthy, bit 1 degraded. The probe error string is
// stored separately (stats-only, rarely read).
type atomicHealth struct {
	bits    atomic.Int32
	lastErr atomic.Value // string
}

func (r *replica) setHealth(healthy, degraded bool, probeErr string) {
	var b int32
	if healthy {
		b |= 1
	}
	if degraded {
		b |= 2
	}
	r.mu.bits.Store(b)
	r.mu.lastErr.Store(probeErr)
	if probeErr != "" {
		r.probeFails.Add(1)
	}
}

func (r *replica) healthy() bool  { return r.mu.bits.Load()&1 != 0 }
func (r *replica) degraded() bool { return r.mu.bits.Load()&2 != 0 }
func (r *replica) probeErr() string {
	if v, ok := r.mu.lastErr.Load().(string); ok {
		return v
	}
	return ""
}

// Router is the fault-tolerant routing tier: it consistent-hashes each
// request's dedup key onto the replica fleet and wraps every forward in
// the robustness envelope (breaker, retries, hedging, budget). It is an
// http.Handler; mount it as the server of cmd/remi-router.
type Router struct {
	opts     Options
	ring     *Ring
	replicas []*replica
	byName   map[string]*replica
	client   *http.Client
	lat      *latencyTracker

	nForwards    atomic.Int64
	nRetries     atomic.Int64
	nHedges      atomic.Int64
	nHedgeWins   atomic.Int64
	nFailovers   atomic.Int64
	nUnavailable atomic.Int64
}

// New builds a router over the replica fleet. Replicas start healthy
// (optimistic — the breaker catches a dead one on its first forward);
// call ProbeNow or StartProbing to ground health in /readyz.
func New(replicas []Replica, opts Options) (*Router, error) {
	if len(replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	opts.fill()
	rt := &Router{
		opts:   opts,
		byName: make(map[string]*replica, len(replicas)),
		client: &http.Client{Transport: opts.Transport},
		lat:    &latencyTracker{},
	}
	names := make([]string, 0, len(replicas))
	for _, rc := range replicas {
		if rc.Name == "" || rc.URL == "" {
			return nil, fmt.Errorf("cluster: replica needs both name and URL (got %q, %q)", rc.Name, rc.URL)
		}
		if _, dup := rt.byName[rc.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", rc.Name)
		}
		rep := &replica{
			name:    rc.Name,
			base:    strings.TrimRight(rc.URL, "/"),
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
		rep.setHealth(true, false, "")
		rt.replicas = append(rt.replicas, rep)
		rt.byName[rc.Name] = rep
		names = append(names, rc.Name)
	}
	rt.ring = NewRing(names, opts.Vnodes)
	return rt, nil
}

// ServeHTTP dispatches: router-local endpoints answer in place, job
// endpoints fan out by id, everything else routes by dedup key.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get(HeaderRequestID)
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set(HeaderRequestID, reqID)
	switch {
	case r.URL.Path == "/healthz":
		rt.handleHealth(w)
	case r.URL.Path == "/readyz":
		rt.handleReady(w)
	case r.URL.Path == "/router/stats":
		writeJSON(w, http.StatusOK, rt.Stats())
	case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		rt.forwardJob(w, r, reqID)
	default:
		rt.forwardKeyed(w, r, reqID)
	}
}

// newRequestID is 8 random bytes hex-encoded: short enough to read in a
// log line, long enough that collisions within a trace window don't
// happen.
func newRequestID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// routeBody is the superset of every POST body the router forwards; it
// parses leniently (unknown fields pass through untouched — the replica
// validates) and only extracts what affinity needs.
type routeBody struct {
	Targets    []string   `json:"targets"`
	Sets       [][]string `json:"sets"`
	Entity     string     `json:"entity"`
	KB         string     `json:"kb"`
	Metric     string     `json:"metric"`
	Language   string     `json:"language"`
	Workers    int        `json:"workers"`
	TimeoutMS  int64      `json:"timeout_ms"`
	TopK       int        `json:"top_k"`
	Exceptions int        `json:"exceptions"`
	Size       int        `json:"size"`
}

// routeKey derives the consistent-hash key for a request: the KB name plus
// the same normalized query identity the replicas deduplicate on, so
// identical queries land on the same replica's result cache regardless of
// endpoint (sync, async and stream forms of one query share affinity).
// GET endpoints key on KB + path + query. The error return is a
// client-visible status (non-zero means: don't forward, answer it).
func (rt *Router) routeKey(r *http.Request, body []byte) (key string, stream bool, status int, err error) {
	path := r.URL.Path
	kb := ""
	if rest, ok := strings.CutPrefix(path, "/v1/kb/"); ok {
		if name, rest2, ok2 := strings.Cut(rest, "/"); ok2 {
			kb, path = name, "/v1/"+rest2
		}
	}
	stream = path == "/v1/mine:stream"
	if r.Method == http.MethodPost && len(body) > 0 {
		var rb routeBody
		if jerr := json.Unmarshal(body, &rb); jerr != nil {
			return "", false, http.StatusBadRequest, fmt.Errorf("parsing request body: %w", jerr)
		}
		if kb == "" {
			kb = rb.KB
		}
		return kb + "\x00" + bodyKey(&rb), stream, 0, nil
	}
	// GETs (describe, stats) and empty-body POSTs: path + canonical query.
	q := r.URL.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(kb)
	b.WriteByte(0)
	b.WriteString(path)
	for _, k := range keys {
		b.WriteByte(0)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strings.Join(q[k], ","))
	}
	return b.String(), stream, 0, nil
}

// bodyKey mirrors the replicas' dedup key construction (length-prefixed
// normalized targets plus every result-affecting option) without
// importing the server package: the two only need to agree with
// themselves, but building them the same way means one query's sync,
// async and batch forms hash together.
func bodyKey(rb *routeBody) string {
	var b strings.Builder
	writeSet := func(set []string) {
		set = append([]string(nil), set...)
		sort.Strings(set)
		for i, t := range set {
			if i > 0 && t == set[i-1] {
				continue
			}
			b.WriteString(strconv.Itoa(len(t)))
			b.WriteByte(':')
			b.WriteString(t)
		}
	}
	writeSet(rb.Targets)
	for _, set := range rb.Sets {
		b.WriteByte('[')
		writeSet(set)
		b.WriteByte(']')
	}
	if rb.Entity != "" {
		b.WriteString("e:")
		b.WriteString(rb.Entity)
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(rb.Size))
	}
	b.WriteString(rb.Metric)
	b.WriteByte('|')
	b.WriteString(rb.Language)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rb.Workers))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(rb.TimeoutMS, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rb.TopK))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(rb.Exceptions))
	return b.String()
}

// attemptResult is one forward's outcome plus the cancel that releases its
// per-attempt context — the caller must invoke cancel (via close) once the
// response body is consumed or abandoned.
type attemptResult struct {
	rep    *replica
	resp   *http.Response
	err    error
	dur    time.Duration
	cancel context.CancelFunc
}

func (a *attemptResult) close() {
	if a.resp != nil {
		io.Copy(io.Discard, io.LimitReader(a.resp.Body, 1<<16))
		a.resp.Body.Close()
	}
	if a.cancel != nil {
		a.cancel()
	}
}

// forwardKeyed buffers the body, derives the routing key and runs the
// robustness envelope.
func (rt *Router) forwardKeyed(w http.ResponseWriter, r *http.Request, reqID string) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.opts.MaxBodyBytes+1))
		if err != nil {
			rt.writeError(w, reqID, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
			return
		}
		if int64(len(body)) > rt.opts.MaxBodyBytes {
			rt.writeError(w, reqID, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", rt.opts.MaxBodyBytes))
			return
		}
	}
	key, stream, status, err := rt.routeKey(r, body)
	if status != 0 {
		rt.writeError(w, reqID, status, err)
		return
	}
	rt.forward(w, r, reqID, key, body, stream)
}

// forward is the robustness envelope: walk the key's ring sequence over
// the healthy replicas, breaker-gated, with backoff between attempts, a
// hedged second request on the first try, and the whole walk bounded by
// the client's timeout budget. The first usable response passes through
// unchanged; only a fleet with nothing to try answers 503.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, reqID, key string, body []byte, stream bool) {
	rt.nForwards.Add(1)
	seq := rt.ring.Sequence(key)
	primaryName := seq[0]
	cands := make([]*replica, 0, len(seq))
	for _, name := range seq {
		if rep := rt.byName[name]; rep.healthy() {
			cands = append(cands, rep)
		}
	}
	if len(cands) == 0 {
		rt.nUnavailable.Add(1)
		setRetryAfter(w, rt.opts.ProbeInterval)
		rt.writeError(w, reqID, http.StatusServiceUnavailable, errors.New("no healthy replicas"))
		return
	}

	ctx := r.Context()
	if budget := clientBudget(r, stream, rt.opts.DefaultTimeout); budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	attempted := false
	var lastErr error
	for i := 0; i < rt.opts.MaxAttempts; i++ {
		rep := cands[i%len(cands)]
		if !rep.breaker.Allow() {
			continue
		}
		if attempted {
			rt.nRetries.Add(1)
			if !sleepBackoff(ctx, rt.opts.RetryBaseDelay, rt.opts.RetryMaxDelay, i) {
				break // budget exhausted mid-backoff
			}
		}
		if ctx.Err() != nil {
			break
		}
		var res attemptResult
		if !attempted && !stream && !rt.opts.HedgeDisabled && len(cands) > 1 {
			res = rt.attemptHedged(ctx, r, body, reqID, rep, cands[(i+1)%len(cands)], primaryName)
		} else {
			res = rt.attempt(ctx, r, body, reqID, rep, rep.name == primaryName)
		}
		attempted = true
		if usable(res) {
			res.rep.breaker.Report(true)
			rt.lat.observe(res.dur)
			if res.rep.name != primaryName {
				rt.nFailovers.Add(1)
			}
			rt.writeResponse(w, res, stream)
			return
		}
		res.rep.breaker.Report(false)
		res.rep.failures.Add(1)
		if res.err != nil {
			lastErr = res.err
		} else {
			lastErr = fmt.Errorf("replica %s answered %s", res.rep.name, res.resp.Status)
		}
		res.close()
	}
	switch {
	case !attempted:
		rt.nUnavailable.Add(1)
		setRetryAfter(w, rt.opts.BreakerCooldown)
		rt.writeError(w, reqID, http.StatusServiceUnavailable, errors.New("all replica circuit breakers open"))
	case ctx.Err() != nil:
		rt.writeError(w, reqID, http.StatusGatewayTimeout,
			fmt.Errorf("timeout budget exhausted after retries: %w", lastErr))
	default:
		rt.writeError(w, reqID, http.StatusBadGateway,
			fmt.Errorf("all forward attempts failed: %w", lastErr))
	}
}

// clientBudget is the deadline the router owes the client: an explicit
// X-Timeout-Budget-Ms wins; non-streaming requests fall back to the
// default, streams run unbounded unless the client bounded them.
func clientBudget(r *http.Request, stream bool, def time.Duration) time.Duration {
	if h := r.Header.Get(HeaderTimeoutBudget); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if stream {
		return 0
	}
	return def
}

// sleepBackoff parks for the i-th retry's jittered exponential delay;
// false means the context expired first.
func sleepBackoff(ctx context.Context, base, max time.Duration, i int) bool {
	d := base << (i - 1)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter over [d/2, d): desynchronizes routers retrying into the
	// same recovering replica.
	d = d/2 + time.Duration(mrand.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// usable reports whether an attempt's outcome should be passed to the
// client rather than retried. Transport errors and 500/502 retry; a 503
// without Retry-After is an instance-local refusal (e.g. a draining
// replica between probes) and fails over; everything else — success, any
// 4xx, a 429 or 503 carrying a Retry-After hint, a 504 — passes through
// unchanged, because retrying those elsewhere would either duplicate work
// past the client's deadline or storm a replica that is deliberately
// shedding.
func usable(res attemptResult) bool {
	if res.err != nil {
		return false
	}
	switch res.resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway:
		return false
	case http.StatusServiceUnavailable:
		return res.resp.Header.Get("Retry-After") != ""
	}
	return true
}

// attempt forwards the buffered request to one replica under its own
// cancellable context. The replica-fault points fire only when the target
// is the key's ring primary, so chaos tests can take "the primary" down
// without blinding the whole fleet.
func (rt *Router) attempt(ctx context.Context, r *http.Request, body []byte, reqID string, rep *replica, primary bool) attemptResult {
	actx, cancel := context.WithCancel(ctx)
	res := attemptResult{rep: rep, cancel: cancel}
	rep.forwards.Add(1)
	start := time.Now()
	if primary && faults.Armed() {
		_ = faults.Fire(actx, faults.ReplicaSlow) // delay-only point
		if err := faults.Fire(actx, faults.ReplicaDown); err != nil {
			res.err = fmt.Errorf("replica %s: %w", rep.name, err)
			res.dur = time.Since(start)
			return res
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, r.Method, rep.base+r.URL.RequestURI(), rd)
	if err != nil {
		res.err = err
		return res
	}
	req.Header = r.Header.Clone()
	req.Header.Set(HeaderRequestID, reqID)
	if dl, ok := actx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(HeaderTimeoutBudget, strconv.FormatInt(ms, 10))
	}
	res.resp, res.err = rt.client.Do(req)
	res.dur = time.Since(start)
	return res
}

// attemptHedged races the primary attempt against a hedge to the next
// candidate: if the primary hasn't answered within the hedge delay
// (EWMA-p99-derived, i.e. "already slower than almost everything we've
// seen"), a second identical request starts and whichever usable response
// lands first wins; the loser's context is cancelled so the fleet doesn't
// finish work nobody will read.
func (rt *Router) attemptHedged(ctx context.Context, r *http.Request, body []byte, reqID string, prim, backup *replica, primaryName string) attemptResult {
	hedged := false
	primCtx, primCancel := context.WithCancel(ctx)
	hedCtx, hedCancel := context.WithCancel(ctx)
	ch := make(chan attemptResult, 2)
	go func() { ch <- rt.attempt(primCtx, r, body, reqID, prim, prim.name == primaryName) }()
	t := time.NewTimer(rt.hedgeDelay())
	defer t.Stop()
	var first attemptResult
	select {
	case first = <-ch:
	case <-ctx.Done():
		first = <-ch
	case <-t.C:
		if backup.breaker.Allow() {
			hedged = true
			rt.nHedges.Add(1)
			go func() { ch <- rt.attempt(hedCtx, r, body, reqID, backup, backup.name == primaryName) }()
		}
		first = <-ch
	}
	if !hedged {
		hedCancel()
		return chainCancel(first, primCancel)
	}
	if usable(first) {
		// Cancel the straggler and discard its eventual result. A
		// cancellation we caused is not evidence about the replica, so
		// the discard reports only genuine outcomes to its breaker.
		var winCancel, loseCancel context.CancelFunc
		if first.rep == backup {
			rt.nHedgeWins.Add(1)
			winCancel, loseCancel = hedCancel, primCancel
		} else {
			winCancel, loseCancel = primCancel, hedCancel
		}
		loseCancel()
		go func() {
			late := <-ch
			if late.err == nil || !errors.Is(late.err, context.Canceled) {
				late.rep.breaker.Report(usable(late))
			}
			late.close()
		}()
		return chainCancel(first, winCancel)
	}
	// The first finisher failed: report it and settle on the other. The
	// survivor's hedge context must outlive its body read, so it rides
	// along in the result's cancel; the loser's is released now.
	first.rep.breaker.Report(false)
	first.rep.failures.Add(1)
	first.close()
	second := <-ch
	if second.rep == backup {
		primCancel()
		return chainCancel(second, hedCancel)
	}
	hedCancel()
	return chainCancel(second, primCancel)
}

// chainCancel appends extra context releases to a result's cancel so they
// run when the result is closed (after its body is consumed), not before.
func chainCancel(res attemptResult, extra context.CancelFunc) attemptResult {
	inner := res.cancel
	res.cancel = func() {
		if inner != nil {
			inner()
		}
		extra()
	}
	return res
}

// hedgeDelay is the current hedge trigger: fixed when configured, else the
// latency tracker's p99, else the fallback until enough samples arrived.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.opts.HedgeDelay > 0 {
		return rt.opts.HedgeDelay
	}
	if p := rt.lat.p99(); p > 0 {
		return p
	}
	return rt.opts.HedgeFallback
}

// writeResponse passes a replica's response to the client unchanged,
// stamped with the serving replica's name. Streaming responses flush per
// chunk so NDJSON/SSE consumers see events as they happen.
func (rt *Router) writeResponse(w http.ResponseWriter, res attemptResult, stream bool) {
	defer res.close()
	h := w.Header()
	for k, vv := range res.resp.Header {
		h[k] = vv
	}
	h.Set(HeaderReplica, res.rep.name)
	w.WriteHeader(res.resp.StatusCode)
	var dst io.Writer = w
	if stream || strings.Contains(res.resp.Header.Get("Content-Type"), "ndjson") ||
		strings.Contains(res.resp.Header.Get("Content-Type"), "event-stream") {
		if f, ok := w.(http.Flusher); ok {
			dst = flushWriter{w: w, f: f}
		}
	}
	_, _ = io.Copy(dst, res.resp.Body)
}

type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// forwardJob routes job-lifecycle requests. Job ids are replica-local
// (each replica runs its own registry), so the router walks the id's ring
// sequence and treats a 404 as "not here, ask the next one"; only when
// every reachable replica disclaims the id does the last 404 pass through.
func (rt *Router) forwardJob(w http.ResponseWriter, r *http.Request, reqID string) {
	rt.nForwards.Add(1)
	stream := strings.HasSuffix(r.URL.Path, "/stream")
	ctx := r.Context()
	if budget := clientBudget(r, stream, rt.opts.DefaultTimeout); budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	seq := rt.ring.Sequence("job|" + strings.TrimPrefix(r.URL.Path, "/v1/jobs/"))
	var notFound *attemptResult
	var lastErr error
	attempted := false
	for _, name := range seq {
		rep := rt.byName[name]
		if !rep.healthy() || !rep.breaker.Allow() {
			continue
		}
		res := rt.attempt(ctx, r, nil, reqID, rep, false)
		attempted = true
		if res.err == nil && res.resp.StatusCode == http.StatusNotFound {
			rep.breaker.Report(true)
			if notFound != nil {
				notFound.close()
			}
			notFound = &res
			continue
		}
		if usable(res) {
			rep.breaker.Report(true)
			if notFound != nil {
				notFound.close()
			}
			rt.writeResponse(w, res, stream)
			return
		}
		rep.breaker.Report(false)
		rep.failures.Add(1)
		if res.err != nil {
			lastErr = res.err
		} else {
			lastErr = fmt.Errorf("replica %s answered %s", rep.name, res.resp.Status)
		}
		res.close()
	}
	switch {
	case notFound != nil:
		rt.writeResponse(w, *notFound, false)
	case !attempted:
		rt.nUnavailable.Add(1)
		setRetryAfter(w, rt.opts.ProbeInterval)
		rt.writeError(w, reqID, http.StatusServiceUnavailable, errors.New("no healthy replicas"))
	default:
		rt.writeError(w, reqID, http.StatusBadGateway,
			fmt.Errorf("all forward attempts failed: %w", lastErr))
	}
}

// handleHealth is router liveness: always 200 while the process answers.
func (rt *Router) handleHealth(w http.ResponseWriter) {
	healthy := 0
	for _, rep := range rt.replicas {
		if rep.healthy() {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "router",
		"replicas": len(rt.replicas),
		"healthy":  healthy,
	})
}

// handleReady is router readiness: the router can do useful work iff at
// least one replica is routable.
func (rt *Router) handleReady(w http.ResponseWriter) {
	for _, rep := range rt.replicas {
		if rep.healthy() {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
			return
		}
	}
	setRetryAfter(w, rt.opts.ProbeInterval)
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no healthy replicas"})
}

// RouterStats is the body of GET /router/stats.
type RouterStats struct {
	Replicas map[string]ReplicaStats `json:"replicas"`
	// Forwards counts routed requests; Retries the extra attempts after a
	// failed one; Hedges the speculative second requests and HedgeWins
	// the hedges that answered first; Failovers the requests served by a
	// non-primary replica; FleetUnavailable the 503s for want of any
	// routable replica.
	Forwards         int64 `json:"forwards"`
	Retries          int64 `json:"retries"`
	Hedges           int64 `json:"hedges"`
	HedgeWins        int64 `json:"hedge_wins"`
	Failovers        int64 `json:"failovers"`
	FleetUnavailable int64 `json:"fleet_unavailable"`
	// HedgeDelayMS is the current hedge trigger (EWMA-p99-derived unless
	// fixed by configuration).
	HedgeDelayMS float64 `json:"hedge_delay_ms"`
}

// ReplicaStats describes one replica's routing state.
type ReplicaStats struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Degraded bool   `json:"degraded,omitempty"`
	Breaker  string `json:"breaker"`
	Forwards int64  `json:"forwards"`
	Failures int64  `json:"failures"`
	// ProbeFailures counts failed /readyz probes; LastProbeError is the
	// most recent probe failure ("" while healthy).
	ProbeFailures  int64  `json:"probe_failures,omitempty"`
	LastProbeError string `json:"last_probe_error,omitempty"`
}

// Stats snapshots the router's counters and per-replica health.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		Replicas:         make(map[string]ReplicaStats, len(rt.replicas)),
		Forwards:         rt.nForwards.Load(),
		Retries:          rt.nRetries.Load(),
		Hedges:           rt.nHedges.Load(),
		HedgeWins:        rt.nHedgeWins.Load(),
		Failovers:        rt.nFailovers.Load(),
		FleetUnavailable: rt.nUnavailable.Load(),
		HedgeDelayMS:     float64(rt.hedgeDelay()) / float64(time.Millisecond),
	}
	for _, rep := range rt.replicas {
		st.Replicas[rep.name] = ReplicaStats{
			URL:            rep.base,
			Healthy:        rep.healthy(),
			Degraded:       rep.degraded(),
			Breaker:        rep.breaker.State().String(),
			Forwards:       rep.forwards.Load(),
			Failures:       rep.failures.Load(),
			ProbeFailures:  rep.probeFails.Load(),
			LastProbeError: rep.probeErr(),
		}
	}
	return st
}

// writeError answers a router-originated failure in the same JSON shape
// the replicas use, request id included, so clients parse one error format
// across the tiers.
func (rt *Router) writeError(w http.ResponseWriter, reqID string, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error(), "request_id": reqID})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// setRetryAfter mirrors the replicas' hint format: whole seconds, floored
// at 1.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
