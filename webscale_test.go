package remi

// The web-scale ingestion path end to end: an N-Triples document carrying a
// single-line literal bigger than bufio.Scanner's default 64KB token cap
// must stream-parse, build through the external-sort builder, survive a
// snapshot round trip, and mine the same golden as an in-memory build.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/rdf"
)

func TestWebScaleLargeLiteralPipeline(t *testing.T) {
	dir := t.TempDir()
	d := datagen.DBpediaLike(datagen.Config{Seed: 31, Scale: 0.05})
	target := d.Members["Person"][0]

	big := strings.Repeat("payload with \"quotes\", a tab\tand a\nnewline - ", 2000)
	if len(big) <= 64*1024 {
		t.Fatalf("literal too small to exercise the scanner cap: %d bytes", len(big))
	}
	extra := rdf.NewTriple(rdf.NewIRI(target), rdf.NewIRI("http://remi.dev/ontology/abstract"), rdf.NewLiteral(big))
	triples := append(append([]rdf.Triple{}, d.Triples...), extra)

	ntPath := filepath.Join(dir, "kb.nt")
	f, err := os.Create(ntPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rdf.WriteAll(f, triples); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	golden, err := FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Load(ntPath) // .nt goes through the streaming builder
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "kb.snap")
	if err := streamed.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	fromSnap, err := Load(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	systems := map[string]*System{"streamed": streamed, "snapshot": fromSnap}
	for name, sys := range systems {
		if sys.NumFacts() != golden.NumFacts() || sys.NumEntities() != golden.NumEntities() {
			t.Fatalf("%s build changed the KB: %d/%d facts, %d/%d entities",
				name, sys.NumFacts(), golden.NumFacts(), sys.NumEntities(), golden.NumEntities())
		}
		if _, ok := sys.kb.EntityID(rdf.NewLiteral(big)); !ok {
			t.Fatalf("%s build lost the >64KB literal", name)
		}
	}

	want, err := golden.Mine([]string{target})
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range systems {
		got, err := sys.Mine([]string{target})
		if err != nil {
			t.Fatalf("%s mine: %v", name, err)
		}
		if got.Found != want.Found {
			t.Fatalf("%s build changed mining outcome: %v vs %v", name, got.Found, want.Found)
		}
		if want.Found && math.Abs(got.Bits-want.Bits) > 1e-9 {
			t.Fatalf("%s build changed solution cost: %v vs %v bits", name, got.Bits, want.Bits)
		}
	}
}
