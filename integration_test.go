package remi

// Integration tests spanning the full pipeline: dataset generation → HDT
// round trip → indexing → prominence/complexity → mining → verbalization →
// SPARQL, plus cross-algorithm agreement between REMI and the AMIE+
// baseline.

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/remi-kb/remi/internal/amie"
	"github.com/remi-kb/remi/internal/complexity"
	"github.com/remi-kb/remi/internal/core"
	"github.com/remi-kb/remi/internal/datagen"
	"github.com/remi-kb/remi/internal/expr"
	"github.com/remi-kb/remi/internal/kb"
	"github.com/remi-kb/remi/internal/prominence"
	"github.com/remi-kb/remi/internal/rdf"
)

// TestPipelineHDTRoundTripMining: results must be identical whether the KB
// was loaded from memory or through the binary HDT format.
func TestPipelineHDTRoundTripMining(t *testing.T) {
	dir := t.TempDir()
	d := datagen.DBpediaLike(datagen.Config{Seed: 77, Scale: 0.05})

	direct, err := FromTriples(d.Triples)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "kb.hdt")
	if err := direct.SaveHDT(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEntities() != direct.NumEntities() || loaded.NumPredicates() != direct.NumPredicates() {
		t.Fatalf("dictionary changed through HDT: %d/%d vs %d/%d",
			loaded.NumEntities(), loaded.NumPredicates(), direct.NumEntities(), direct.NumPredicates())
	}

	targets := []string{d.Members["Person"][0]}
	r1, err := direct.Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Found != r2.Found {
		t.Fatalf("HDT round trip changed mining outcome: %v vs %v", r1.Found, r2.Found)
	}
	if r1.Found && math.Abs(r1.Bits-r2.Bits) > 1e-9 {
		t.Fatalf("HDT round trip changed Ĉ: %f vs %f", r1.Bits, r2.Bits)
	}
}

// TestREMIAgreesWithAMIE: on a small KB, whenever REMI (standard bias)
// finds an RE, AMIE+ must also find one, and REMI's solution must be among
// AMIE's answer set semantically (bindings equal to the targets).
func TestREMIAgreesWithAMIE(t *testing.T) {
	d := datagen.TinyGeo()
	opts := kb.DefaultOptions()
	opts.InverseTopFraction = 0
	k, err := d.BuildKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Exact)

	id := func(n string) kb.EntID {
		e, ok := k.EntityID(rdf.NewIRI("http://tiny.demo/resource/" + n))
		if !ok {
			t.Fatalf("missing %s", n)
		}
		return e
	}

	for _, names := range [][]string{{"Georgetown"}, {"Guyana", "Suriname"}, {"Rennes", "Nantes"}} {
		var targets []kb.EntID
		for _, n := range names {
			targets = append(targets, id(n))
		}
		cfg := core.DefaultConfig()
		cfg.Language = core.StandardLanguage
		remiMiner := core.NewMiner(k, est, cfg)
		rr, err := remiMiner.Mine(targets)
		if err != nil {
			t.Fatal(err)
		}

		am := amie.NewMiner(k, prom, amie.Config{MaxLen: 3, AllowConstants: true, Workers: 2, Timeout: time.Minute})
		ar := am.Mine(targets)

		if rr.Found() && len(ar.Rules) == 0 {
			t.Errorf("%v: REMI found %s but AMIE found nothing", names, rr.Expression.Format(k))
		}
		if !rr.Found() && len(ar.Rules) > 0 {
			// AMIE's language (2 bound atoms at MaxLen 3) is a subset of
			// REMI's standard bias here, so this direction must also hold.
			t.Errorf("%v: AMIE found %s but REMI found nothing", names, ar.Rules[0].Format(k))
		}
	}
}

// TestEndToEndWikidata mines the top entities of every Wikidata-like class
// through the public facade and sanity-checks each solution.
func TestEndToEndWikidata(t *testing.T) {
	d := datagen.WikidataLike(datagen.Config{Seed: 9, Scale: 0.08})
	sys, err := FromTriples(d.Triples)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, class := range []string{"Human", "City", "Film", "Company"} {
		iri := d.Members[class][0]
		res, err := sys.Mine([]string{iri}, WithWorkers(4), WithTimeout(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		found++
		if res.NL == "" || res.SPARQL == "" || res.Bits <= 0 {
			t.Fatalf("%s: incomplete solution %+v", iri, res.Solution)
		}
		if !strings.Contains(res.SPARQL, "SELECT DISTINCT ?x") {
			t.Fatalf("%s: bad SPARQL %s", iri, res.SPARQL)
		}
	}
	if found == 0 {
		t.Fatal("no top entity of any class could be described")
	}
}

// TestLanguageBiasSolutionCounts: the extended language can only increase
// the number of solvable sets (the Table 4 "#solutions" observation).
func TestLanguageBiasSolutionCounts(t *testing.T) {
	d := datagen.DBpediaLike(datagen.Config{Seed: 13, Scale: 0.05})
	k, err := d.BuildKB(kb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prom := prominence.Build(k, prominence.Fr)
	est := complexity.New(k, prom, complexity.Compressed)

	var stdFound, extFound int
	for i := 0; i < 12; i++ {
		iri := d.Members["Settlement"][i*3%len(d.Members["Settlement"])]
		id, ok := k.EntityID(rdf.NewIRI(iri))
		if !ok {
			continue
		}
		stdCfg := core.DefaultConfig()
		stdCfg.Language = core.StandardLanguage
		stdCfg.Timeout = 10 * time.Second
		if r, err := core.NewMiner(k, est, stdCfg).Mine([]kb.EntID{id}); err == nil && r.Found() {
			stdFound++
		}
		extCfg := core.DefaultConfig()
		extCfg.Timeout = 10 * time.Second
		if r, err := core.NewMiner(k, est, extCfg).Mine([]kb.EntID{id}); err == nil && r.Found() {
			extFound++
		}
	}
	if extFound < stdFound {
		t.Fatalf("extended language solved fewer sets (%d) than standard (%d)", extFound, stdFound)
	}
}

// TestExpressionKeyInvariance: expression keys are stable under conjunct
// reordering (used for dedup in top-k and disjunctive mining).
func TestExpressionKeyInvariance(t *testing.T) {
	g1 := expr.NewAtom1(1, 10)
	g2 := expr.NewPath(2, 3, 20)
	a := expr.Expression{g1, g2}
	b := expr.Expression{g2, g1}
	if a.Key() != b.Key() {
		t.Fatal("expression key depends on conjunct order")
	}
	c := expr.Expression{g1}
	if a.Key() == c.Key() {
		t.Fatal("different expressions share a key")
	}
}
