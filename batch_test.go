package remi

import (
	"context"
	"errors"
	"testing"
)

// TestMineBatchFacade: MineBatch entries are identical to per-set
// MineContext calls, failures stay per-set, and in-batch repeats are
// flagged and share the converted result.
func TestMineBatchFacade(t *testing.T) {
	sys := tinySystem(t)
	sets := [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Paris"},
		{tinyNS + "Nantes", tinyNS + "Rennes"}, // repeat of set 0, reordered
		{tinyNS + "Nowhere"},                   // unknown entity: per-set error
		{},                                     // empty: per-set error
		{tinyNS + "Lyon", tinyNS + "Marseille"},
	}
	br, err := sys.MineBatch(context.Background(), sets, WithBatchConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != len(sets) {
		t.Fatalf("%d entries for %d sets", len(br.Entries), len(sets))
	}
	for i, set := range sets {
		e := br.Entries[i]
		switch i {
		case 3:
			if !errors.Is(e.Err, ErrUnknownEntity) {
				t.Fatalf("set %d: err = %v, want ErrUnknownEntity", i, e.Err)
			}
			continue
		case 4:
			if !errors.Is(e.Err, ErrEmptyTargetSet) {
				t.Fatalf("set %d: err = %v, want ErrEmptyTargetSet", i, e.Err)
			}
			continue
		}
		if e.Err != nil {
			t.Fatalf("set %d: unexpected error %v", i, e.Err)
		}
		want, err := sys.MineContext(context.Background(), set)
		if err != nil {
			t.Fatalf("sequential set %d: %v", i, err)
		}
		if e.Result.Found != want.Found {
			t.Fatalf("set %d: found %v, want %v", i, e.Result.Found, want.Found)
		}
		if e.Result.Expression != want.Expression || e.Result.Bits != want.Bits ||
			e.Result.NL != want.NL || e.Result.SPARQL != want.SPARQL {
			t.Fatalf("set %d: batch solution %+v differs from sequential %+v",
				i, e.Result.Solution, want.Solution)
		}
	}
	if !br.Entries[2].Deduplicated || br.Deduped != 1 {
		t.Fatalf("repeat not deduplicated: entry=%+v deduped=%d", br.Entries[2], br.Deduped)
	}
	if br.Entries[2].Result != br.Entries[0].Result {
		t.Fatal("repeated set did not share the converted result")
	}
	if br.QueueBuild <= 0 {
		t.Fatalf("batch queue-build total not recorded: %v", br.QueueBuild)
	}
}

// TestMineBatchFacadeBadOptions: invalid options fail the whole batch, not
// per set (there is nothing per-set about them).
func TestMineBatchFacadeBadOptions(t *testing.T) {
	sys := tinySystem(t)
	_, err := sys.MineBatch(context.Background(), [][]string{{tinyNS + "Paris"}}, WithMetric(MetricCustom))
	if err == nil {
		t.Fatal("MetricCustom without SetProminence accepted")
	}
}
