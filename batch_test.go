package remi

import (
	"context"
	"errors"
	"testing"
)

// TestMineBatchFacade: MineBatch entries are identical to per-set
// MineContext calls, failures stay per-set, and in-batch repeats are
// flagged and share the converted result.
func TestMineBatchFacade(t *testing.T) {
	sys := tinySystem(t)
	sets := [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Paris"},
		{tinyNS + "Nantes", tinyNS + "Rennes"}, // repeat of set 0, reordered
		{tinyNS + "Nowhere"},                   // unknown entity: per-set error
		{},                                     // empty: per-set error
		{tinyNS + "Lyon", tinyNS + "Marseille"},
	}
	br, err := sys.MineBatch(context.Background(), sets, WithBatchConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != len(sets) {
		t.Fatalf("%d entries for %d sets", len(br.Entries), len(sets))
	}
	for i, set := range sets {
		e := br.Entries[i]
		switch i {
		case 3:
			if !errors.Is(e.Err, ErrUnknownEntity) {
				t.Fatalf("set %d: err = %v, want ErrUnknownEntity", i, e.Err)
			}
			continue
		case 4:
			if !errors.Is(e.Err, ErrEmptyTargetSet) {
				t.Fatalf("set %d: err = %v, want ErrEmptyTargetSet", i, e.Err)
			}
			continue
		}
		if e.Err != nil {
			t.Fatalf("set %d: unexpected error %v", i, e.Err)
		}
		want, err := sys.MineContext(context.Background(), set)
		if err != nil {
			t.Fatalf("sequential set %d: %v", i, err)
		}
		if e.Result.Found != want.Found {
			t.Fatalf("set %d: found %v, want %v", i, e.Result.Found, want.Found)
		}
		if e.Result.Expression != want.Expression || e.Result.Bits != want.Bits ||
			e.Result.NL != want.NL || e.Result.SPARQL != want.SPARQL {
			t.Fatalf("set %d: batch solution %+v differs from sequential %+v",
				i, e.Result.Solution, want.Solution)
		}
	}
	if !br.Entries[2].Deduplicated || br.Deduped != 1 {
		t.Fatalf("repeat not deduplicated: entry=%+v deduped=%d", br.Entries[2], br.Deduped)
	}
	if br.Entries[2].Result != br.Entries[0].Result {
		t.Fatal("repeated set did not share the converted result")
	}
	if br.QueueBuild <= 0 {
		t.Fatalf("batch queue-build total not recorded: %v", br.QueueBuild)
	}
}

// TestMineBatchEachFacade: the streaming variant delivers every entry
// exactly once, invalid sets first, and the streamed entries are the same
// values the returned BatchResult holds.
func TestMineBatchEachFacade(t *testing.T) {
	sys := tinySystem(t)
	sets := [][]string{
		{tinyNS + "Rennes", tinyNS + "Nantes"},
		{tinyNS + "Nowhere"}, // unknown entity: delivered before mining
		{tinyNS + "Paris"},
		{tinyNS + "Nantes", tinyNS + "Rennes"}, // repeat of set 0
	}
	var order []int
	got := make(map[int]BatchEntry)
	br, err := sys.MineBatchEach(context.Background(), sets, func(i int, e BatchEntry) {
		if _, dup := got[i]; dup {
			t.Errorf("set %d delivered twice", i)
		}
		got[i] = e
		order = append(order, i)
	}, WithBatchConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sets) {
		t.Fatalf("callback fired for %d sets, want %d", len(got), len(sets))
	}
	if len(order) == 0 || order[0] != 1 {
		t.Fatalf("invalid set not delivered first: order %v", order)
	}
	if !errors.Is(got[1].Err, ErrUnknownEntity) {
		t.Fatalf("set 1: err = %v, want ErrUnknownEntity", got[1].Err)
	}
	for i, e := range br.Entries {
		g := got[i]
		if (g.Err == nil) != (e.Err == nil) || g.Result != e.Result || g.Deduplicated != e.Deduplicated {
			t.Fatalf("set %d: streamed entry %+v differs from returned %+v", i, g, e)
		}
	}
	if !br.Entries[3].Deduplicated || br.Entries[3].Result != br.Entries[0].Result {
		t.Fatalf("repeat not shared: %+v", br.Entries[3])
	}
}

// TestWithProgress: a progress subscriber receives each incumbent
// improvement, ending on the returned solution, without altering the result.
func TestWithProgress(t *testing.T) {
	sys := tinySystem(t)
	targets := []string{tinyNS + "Rennes", tinyNS + "Nantes"}
	want, err := sys.Mine(targets)
	if err != nil {
		t.Fatal(err)
	}
	var progress []Progress
	res, err := sys.Mine(targets, WithProgress(func(p Progress) { progress = append(progress, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Expression != want.Expression || res.Bits != want.Bits {
		t.Fatalf("WithProgress changed the result: %q (%v bits), want %q (%v bits)",
			res.Expression, res.Bits, want.Expression, want.Bits)
	}
	if len(progress) == 0 {
		t.Fatal("no progress events delivered")
	}
	last := progress[len(progress)-1]
	if last.Kind != "new_best" || last.Expression != res.Expression || last.Bits != res.Bits {
		t.Fatalf("final progress event %+v does not match the solution %q (%v bits)",
			last, res.Expression, res.Bits)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].Bits >= progress[i-1].Bits {
			t.Fatalf("incumbent did not improve monotonically: %v then %v bits",
				progress[i-1].Bits, progress[i].Bits)
		}
	}
}

// TestMineBatchFacadeBadOptions: invalid options fail the whole batch, not
// per set (there is nothing per-set about them).
func TestMineBatchFacadeBadOptions(t *testing.T) {
	sys := tinySystem(t)
	_, err := sys.MineBatch(context.Background(), [][]string{{tinyNS + "Paris"}}, WithMetric(MetricCustom))
	if err == nil {
		t.Fatal("MetricCustom without SetProminence accepted")
	}
}
