module github.com/remi-kb/remi

go 1.24
