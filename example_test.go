package remi_test

import (
	"fmt"
	"log"

	remi "github.com/remi-kb/remi"
)

// ExampleSystem_Mine mines the paper's introductory referring expression:
// Paris is identified as the capital of France.
func ExampleSystem_Mine() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Mine([]string{"http://tiny.demo/resource/Paris"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Expression)
	fmt.Println(res.NL)
	// Output:
	// capital⁻¹(x, France)
	// x is the entity such that x is the capital of France
}

// ExampleSystem_Mine_set shows the Section 2.2 example: the set {Guyana,
// Suriname} needs an existentially quantified path through the language
// family.
func ExampleSystem_Mine_set() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Mine([]string{
		"http://tiny.demo/resource/Guyana",
		"http://tiny.demo/resource/Suriname",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Expression)
	// Output:
	// in(x, SouthAmerica) ∧ officialLanguage(x, y) ∧ langFamily(y, Germanic)
}

// ExampleSystem_Mine_sparql shows the generated SPARQL for a mined RE.
func ExampleSystem_Mine_sparql() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Mine([]string{"http://tiny.demo/resource/Georgetown"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.SPARQL)
	// Output:
	// SELECT DISTINCT ?x WHERE {
	//   ?x <http://tiny.demo/ontology/cityIn> <http://tiny.demo/resource/Guyana> .
	// }
}

// ExampleSystem_MineDisjunctive splits unrelated targets into branches.
func ExampleSystem_MineDisjunctive() {
	sys, err := remi.GenerateDemo("tiny", 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.MineDisjunctive([]string{
		"http://tiny.demo/resource/Paris",
		"http://tiny.demo/resource/Georgetown",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format())
	// Output:
	// (cityIn(x, Guyana)) ∨ (capital⁻¹(x, France))
}
