# Builds one image carrying the three cluster binaries: kbgen (snapshot
# publisher), remi-serve (replica) and remi-router (routing tier). The
# docker-compose.yml demo runs all three roles from this image; pick the
# role with --entrypoint.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/ \
    ./cmd/kbgen ./cmd/remi-serve ./cmd/remi-router

FROM alpine:3.20
COPY --from=build /out/ /usr/local/bin/
# 8080: remi-serve replicas; 8090: remi-router.
EXPOSE 8080 8090
ENTRYPOINT ["remi-serve"]
CMD ["-demo", "tiny"]
